// Unit tests for the net layer: message codec, in-process channels, TCP
// channels, and the 3-port link.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "vhp/common/bytes.hpp"
#include "vhp/net/channel.hpp"
#include "vhp/net/inproc.hpp"
#include "vhp/net/message.hpp"
#include "vhp/net/tcp.hpp"

namespace vhp::net {
namespace {

using namespace std::chrono_literals;

// ---------- message codec ----------

class MessageCodecTest : public ::testing::TestWithParam<Message> {};

TEST_P(MessageCodecTest, RoundTrips) {
  const Message& original = GetParam();
  const Bytes frame = encode(original);
  auto decoded = decode(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(type_of(decoded.value()), type_of(original));
  EXPECT_EQ(decoded.value(), original);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, MessageCodecTest,
    ::testing::Values(
        Message{DataWrite{0x10, Bytes{1, 2, 3}}},
        Message{DataWrite{0xffffffff, Bytes{}}},
        Message{DataReadReq{0x20, 64}},
        Message{DataReadResp{0x20, Bytes(300, 0xee)}},
        Message{IntRaise{7}},
        Message{ClockTick{123456789012ULL, 1000}},
        Message{TimeAck{42}},
        Message{TimeAck{42, 1234}},
        Message{TimeAck{7, kLookaheadUnbounded}},
        Message{Shutdown{}}));

TEST(MessageCodec, RejectsUnknownType) {
  Bytes frame{0x7f};
  EXPECT_FALSE(decode(frame).ok());
}

TEST(MessageCodec, RejectsTruncation) {
  Bytes frame = encode(Message{ClockTick{1, 2}});
  frame.pop_back();
  EXPECT_FALSE(decode(frame).ok());
}

TEST(MessageCodec, RejectsTrailingGarbage) {
  // TimeAck is length-versioned (trailing bytes are its v2 lookahead), so
  // the trailing-garbage rule is checked on a fixed-layout type.
  Bytes frame = encode(Message{IntRaise{9}});
  frame.push_back(0);
  EXPECT_FALSE(decode(frame).ok());
}

// ---------- TIME_ACK wire v2 (adaptive lookahead) ----------

TEST(MessageCodec, TimeAckWithoutLookaheadIsByteIdenticalToV1) {
  // Hand-built v1 frame: type byte + board_tick, nothing else.
  Bytes v1;
  ByteWriter w{v1};
  w.u8v(static_cast<u8>(MsgType::kTimeAck));
  w.u64v(42);
  EXPECT_EQ(encode(Message{TimeAck{42}}), v1);
  auto decoded = decode(v1);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const auto& ack = std::get<TimeAck>(decoded.value());
  EXPECT_EQ(ack.board_tick, 42u);
  EXPECT_FALSE(ack.lookahead.has_value());
}

TEST(MessageCodec, TimeAckV2AppendsLookahead) {
  const Bytes v1 = encode(Message{TimeAck{42}});
  const Bytes v2 = encode(Message{TimeAck{42, 9000}});
  // The v2 frame is the v1 frame plus the trailing lookahead field.
  ASSERT_GT(v2.size(), v1.size());
  EXPECT_TRUE(std::equal(v1.begin(), v1.end(), v2.begin()));
  auto decoded = decode(v2);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const auto& ack = std::get<TimeAck>(decoded.value());
  ASSERT_TRUE(ack.lookahead.has_value());
  EXPECT_EQ(*ack.lookahead, 9000u);
}

TEST(MessageCodec, TimeAckUnboundedLookaheadSentinel) {
  auto decoded = decode(encode(Message{TimeAck{1, kLookaheadUnbounded}}));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(std::get<TimeAck>(decoded.value()).lookahead,
            std::optional<u64>{kLookaheadUnbounded});
}

TEST(MessageCodec, TimeAckRejectsTruncatedLookahead) {
  Bytes frame = encode(Message{TimeAck{42, 0x1234567890ULL}});
  frame.pop_back();  // clip the trailing lookahead varint mid-field
  EXPECT_FALSE(decode(frame).ok());
}

TEST(MessageCodec, RejectsEmptyFrame) {
  EXPECT_FALSE(decode(Bytes{}).ok());
}

TEST(MessageCodec, TypeNames) {
  EXPECT_EQ(to_string(MsgType::kClockTick), "CLOCK_TICK");
  EXPECT_EQ(to_string(MsgType::kTimeAck), "TIME_ACK");
  EXPECT_EQ(to_string(MsgType::kShutdown), "SHUTDOWN");
}

// ---------- transports, exercised through one fixture ----------

enum class Transport { kInProc, kTcp };

class ChannelTest : public ::testing::TestWithParam<Transport> {
 protected:
  void SetUp() override {
    if (GetParam() == Transport::kInProc) {
      auto [a, b] = make_inproc_channel_pair(16);
      a_ = std::move(a);
      b_ = std::move(b);
    } else {
      listener_ = std::make_unique<TcpLinkListener>();
      const auto ports = listener_->ports();
      Result<CosimLink> client{Status{StatusCode::kInternal, "unset"}};
      std::thread t{[&] { client = connect_tcp_link(ports); }};
      auto server = listener_->accept_link();
      t.join();
      ASSERT_TRUE(server.ok());
      ASSERT_TRUE(client.ok());
      server_link_ = std::move(server).value();
      client_link_ = std::move(client).value();
      a_ = std::move(server_link_.data);
      b_ = std::move(client_link_.data);
    }
  }

  std::unique_ptr<TcpLinkListener> listener_;
  CosimLink server_link_;
  CosimLink client_link_;
  ChannelPtr a_;
  ChannelPtr b_;
};

TEST_P(ChannelTest, SendRecvOneFrame) {
  const Bytes frame{1, 2, 3, 4};
  ASSERT_TRUE(a_->send(frame).ok());
  auto got = b_->recv(1000ms);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got.value(), frame);
}

TEST_P(ChannelTest, PreservesOrderAndBoundaries) {
  for (u8 i = 0; i < 10; ++i) {
    Bytes frame(static_cast<std::size_t>(i) + 1, i);
    ASSERT_TRUE(a_->send(frame).ok());
  }
  for (u8 i = 0; i < 10; ++i) {
    auto got = b_->recv(1000ms);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().size(), static_cast<std::size_t>(i) + 1);
    EXPECT_EQ(got.value()[0], i);
  }
}

TEST_P(ChannelTest, EmptyFrameIsLegal) {
  ASSERT_TRUE(a_->send(Bytes{}).ok());
  auto got = b_->recv(1000ms);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().empty());
}

TEST_P(ChannelTest, LargeFrame) {
  Bytes frame(100000);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    frame[i] = static_cast<u8>(i * 7);
  }
  std::thread sender{[&] { ASSERT_TRUE(a_->send(frame).ok()); }};
  auto got = b_->recv(5000ms);
  sender.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), frame);
}

TEST_P(ChannelTest, TryRecvNonBlocking) {
  auto none = b_->try_recv();
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none.value().has_value());
  ASSERT_TRUE(a_->send(Bytes{9}).ok());
  // TCP needs a moment for delivery.
  for (int i = 0; i < 1000; ++i) {
    auto some = b_->try_recv();
    ASSERT_TRUE(some.ok());
    if (some.value().has_value()) {
      EXPECT_EQ(*some.value(), Bytes{9});
      return;
    }
    std::this_thread::sleep_for(1ms);
  }
  FAIL() << "frame never arrived";
}

TEST_P(ChannelTest, RecvTimesOut) {
  auto got = b_->recv(30ms);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_P(ChannelTest, CloseAbortsPeerRecv) {
  a_->close();
  auto got = b_->recv(1000ms);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kAborted);
}

TEST_P(ChannelTest, PendingFramesDrainBeforeCloseReported) {
  ASSERT_TRUE(a_->send(Bytes{1}).ok());
  ASSERT_TRUE(a_->send(Bytes{2}).ok());
  // Give TCP a moment to flush before closing.
  std::this_thread::sleep_for(20ms);
  a_->close();
  auto f1 = b_->recv(1000ms);
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(f1.value(), Bytes{1});
  auto f2 = b_->recv(1000ms);
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f2.value(), Bytes{2});
  EXPECT_EQ(b_->recv(1000ms).status().code(), StatusCode::kAborted);
}

TEST_P(ChannelTest, MessageHelpersRoundTrip) {
  ASSERT_TRUE(send_msg(*a_, ClockTick{77, 10}).ok());
  auto msg = recv_msg(*b_, 1000ms);
  ASSERT_TRUE(msg.ok());
  ASSERT_TRUE(std::holds_alternative<ClockTick>(msg.value()));
  EXPECT_EQ(std::get<ClockTick>(msg.value()).sim_cycle, 77u);
}

TEST_P(ChannelTest, BidirectionalConcurrentTraffic) {
  constexpr int kCount = 200;
  std::thread peer{[&] {
    for (int i = 0; i < kCount; ++i) {
      auto got = b_->recv(5000ms);
      ASSERT_TRUE(got.ok());
      ASSERT_TRUE(b_->send(got.value()).ok());  // echo
    }
  }};
  for (int i = 0; i < kCount; ++i) {
    Bytes frame{static_cast<u8>(i), static_cast<u8>(i >> 8)};
    ASSERT_TRUE(a_->send(frame).ok());
    auto echo = a_->recv(5000ms);
    ASSERT_TRUE(echo.ok());
    EXPECT_EQ(echo.value(), frame);
  }
  peer.join();
}

INSTANTIATE_TEST_SUITE_P(Transports, ChannelTest,
                         ::testing::Values(Transport::kInProc,
                                           Transport::kTcp),
                         [](const auto& suite_info) {
                           return suite_info.param == Transport::kInProc ? "InProc"
                                                                   : "Tcp";
                         });

TEST(InProcLink, ThreeIndependentChannels) {
  LinkPair pair = make_inproc_link_pair();
  ASSERT_TRUE(send_msg(*pair.hw.clock, ClockTick{1, 2}).ok());
  ASSERT_TRUE(send_msg(*pair.hw.intr, IntRaise{3}).ok());
  ASSERT_TRUE(send_msg(*pair.hw.data, DataWrite{4, {5}}).ok());
  // Each arrives only on its own channel.
  auto clk = recv_msg(*pair.board.clock, 100ms);
  ASSERT_TRUE(clk.ok());
  EXPECT_TRUE(std::holds_alternative<ClockTick>(clk.value()));
  auto irq = recv_msg(*pair.board.intr, 100ms);
  ASSERT_TRUE(irq.ok());
  EXPECT_TRUE(std::holds_alternative<IntRaise>(irq.value()));
  auto data = recv_msg(*pair.board.data, 100ms);
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(std::holds_alternative<DataWrite>(data.value()));
  EXPECT_FALSE(pair.board.clock->try_recv().value().has_value());
}

TEST(InProcChannel, BackpressureBlocksSender) {
  auto [a, b] = make_inproc_channel_pair(2);
  ASSERT_TRUE(a->send(Bytes{1}).ok());
  ASSERT_TRUE(a->send(Bytes{2}).ok());
  std::atomic<bool> third_sent{false};
  std::thread sender{[&] {
    ASSERT_TRUE(a->send(Bytes{3}).ok());
    third_sent = true;
  }};
  std::this_thread::sleep_for(30ms);
  EXPECT_FALSE(third_sent);  // queue full, sender blocked
  (void)b->recv(1000ms);     // make room
  sender.join();
  EXPECT_TRUE(third_sent);
}

}  // namespace
}  // namespace vhp::net
