// Priority inheritance and OS-state tracing tests.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "vhp/rtos/kernel.hpp"
#include "vhp/rtos/sync.hpp"

namespace vhp::rtos {
namespace {

KernelConfig cfg() {
  KernelConfig c;
  c.cycles_per_tick = 10;
  c.timeslice_ticks = 5;
  return c;
}

/// The classic priority-inversion scenario:
///   low acquires the mutex, then high blocks on it, while mid hogs the CPU.
/// Without inheritance, mid starves low (and therefore high) for its whole
/// run; with inheritance, low runs at high's priority, releases quickly,
/// and high finishes before mid.
std::vector<std::string> run_inversion_scenario(Mutex::Protocol protocol) {
  Kernel k{cfg()};
  Mutex mu{k, protocol};
  std::vector<std::string> completion;
  k.spawn("low", 20, [&] {
    mu.lock();
    k.delay(SwTicks{2});  // let high arrive and block on the mutex
    k.consume(100);       // critical section: 10 ticks of work
    mu.unlock();
    completion.push_back("low");
  });
  k.spawn("high", 2, [&] {
    k.delay(SwTicks{1});  // let low grab the mutex first
    mu.lock();
    mu.unlock();
    completion.push_back("high");
  });
  k.spawn("mid", 10, [&] {
    k.delay(SwTicks{1});
    k.consume(1000);  // 100 ticks of unrelated CPU hogging
    completion.push_back("mid");
  });
  k.run(true);
  return completion;
}

TEST(PriorityInheritance, BoundsInversion) {
  const auto order = run_inversion_scenario(Mutex::Protocol::kInherit);
  ASSERT_EQ(order.size(), 3u);
  // low (boosted) finishes its critical section and high completes before
  // the mid hog is done.
  EXPECT_EQ(order[0], "low");
  EXPECT_EQ(order[1], "high");
  EXPECT_EQ(order[2], "mid");
}

TEST(PriorityInheritance, WithoutProtocolInversionHappens) {
  const auto order = run_inversion_scenario(Mutex::Protocol::kNone);
  ASSERT_EQ(order.size(), 3u);
  // mid monopolizes the CPU; high is stuck behind low until mid is done.
  EXPECT_EQ(order[0], "mid");
}

TEST(PriorityInheritance, OwnerDeboostsOnUnlock) {
  Kernel k{cfg()};
  Mutex mu{k};
  int prio_during = -1;
  int prio_after = -1;
  Thread* low_thread = nullptr;
  auto& low = k.spawn("low", 20, [&] {
    mu.lock();
    k.delay(SwTicks{2});  // high blocks meanwhile
    prio_during = low_thread->priority();
    mu.unlock();
    prio_after = low_thread->priority();
  });
  low_thread = &low;
  k.spawn("high", 2, [&] {
    k.delay(SwTicks{1});
    MutexLock lock{mu};
  });
  k.spawn("ticker", 25, [&] { k.consume(500); });
  k.run(true);
  EXPECT_EQ(prio_during, 2);   // boosted to high's priority
  EXPECT_EQ(prio_after, 20);   // restored
  EXPECT_EQ(low.base_priority(), 20);
}

TEST(PriorityInheritance, NestedMutexesKeepStrongestBoost) {
  Kernel k{cfg()};
  Mutex a{k};
  Mutex b{k};
  std::vector<int> prio_trace;
  Thread* low_thread = nullptr;
  auto& low = k.spawn("low", 20, [&] {
    a.lock();
    b.lock();
    k.delay(SwTicks{2});  // both waiters arrive
    prio_trace.push_back(low_thread->priority());  // boosted by strongest
    b.unlock();           // waiter of b had priority 5
    prio_trace.push_back(low_thread->priority());  // still boosted via a (2)
    a.unlock();
    prio_trace.push_back(low_thread->priority());  // fully restored
  });
  low_thread = &low;
  k.spawn("wa", 2, [&] {
    k.delay(SwTicks{1});
    MutexLock lock{a};
  });
  k.spawn("wb", 5, [&] {
    k.delay(SwTicks{1});
    MutexLock lock{b};
  });
  k.spawn("ticker", 25, [&] { k.consume(500); });
  k.run(true);
  ASSERT_EQ(prio_trace.size(), 3u);
  EXPECT_EQ(prio_trace[0], 2);
  EXPECT_EQ(prio_trace[1], 2);
  EXPECT_EQ(prio_trace[2], 20);
}

TEST(EventFlagTimed, TimesOut) {
  Kernel k{cfg()};
  EventFlag flag{k};
  std::optional<u32> got = 1u;
  k.spawn("waiter", 5, [&] { got = flag.wait_any_ticks(0b1, SwTicks{5}); });
  k.spawn("ticker", 6, [&] { k.consume(200); });
  k.run(true);
  EXPECT_FALSE(got.has_value());
}

TEST(EventFlagTimed, MatchesBeforeTimeout) {
  Kernel k{cfg()};
  EventFlag flag{k};
  std::optional<u32> got;
  k.spawn("waiter", 5, [&] { got = flag.wait_any_ticks(0b10, SwTicks{50}); });
  k.spawn("setter", 6, [&] {
    k.delay(SwTicks{2});
    flag.set(0b10);
  });
  k.run(true);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 0b10u);
}

TEST(StateTrace, RecordsFigure4Transitions) {
  // The paper's Figure 4: Normal -> Idle on budget exhaustion (flag set,
  // context saved, time sent back), Idle -> Normal on clock packet (grant).
  KernelConfig c = cfg();
  c.budget_mode = true;
  Kernel k{c};
  std::vector<std::pair<OsState, u64>> transitions;
  k.set_state_trace([&](OsState s, SwTicks t) {
    transitions.emplace_back(s, t.value());
  });
  int freezes = 0;
  k.set_freeze_callback([&](SwTicks) {
    if (++freezes == 3) {
      k.shutdown();
    } else {
      k.grant_cycles(50);  // 5 ticks per quantum
    }
  });
  k.spawn("app", 8, [&] { k.consume(1000); });
  k.run();
  // Idle@0, Normal@0, Idle@5, Normal@5, Idle@10.
  ASSERT_EQ(transitions.size(), 5u);
  EXPECT_EQ(transitions[0], std::make_pair(OsState::kIdle, u64{0}));
  EXPECT_EQ(transitions[1], std::make_pair(OsState::kNormal, u64{0}));
  EXPECT_EQ(transitions[2], std::make_pair(OsState::kIdle, u64{5}));
  EXPECT_EQ(transitions[3], std::make_pair(OsState::kNormal, u64{5}));
  EXPECT_EQ(transitions[4], std::make_pair(OsState::kIdle, u64{10}));
}

}  // namespace
}  // namespace vhp::rtos
