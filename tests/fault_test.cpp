// vhp::fault unit coverage, fiber-free (label "fault-tsan": selected by both
// the tsan preset and the fault gate in scripts/check.sh).
//
// Layers under test, bottom up: FaultPlan (JSON round trip, validation),
// FaultSchedule (seeded determinism, lane independence, budgets, blackouts),
// the fault::inject channel decorator (every FaultKind over an inproc pair),
// the recovery layer (retransmit, dup filtering, CRC drops, out-of-order
// reassembly, give-up, TCP redial resync), fault markers in flight
// recordings, and SyncCoordinator eviction/rejoin.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "vhp/fabric/fabric.hpp"
#include "vhp/fault/inject.hpp"
#include "vhp/fault/plan.hpp"
#include "vhp/fault/reliable.hpp"
#include "vhp/net/inproc.hpp"
#include "vhp/net/tcp.hpp"
#include "vhp/obs/recording.hpp"

namespace vhp::fault {
namespace {

using namespace std::chrono_literals;

Bytes bytes_of(std::string_view text) {
  return Bytes{text.begin(), text.end()};
}

/// FaultRule has too many knobs for warning-free designated initializers;
/// tests spell rules as a kind plus a mutation.
template <typename Mutate>
FaultRule rule_of(FaultKind kind, Mutate&& mutate) {
  FaultRule rule;
  rule.kind = kind;
  mutate(rule);
  return rule;
}

FaultRule rule_of(FaultKind kind) {
  return rule_of(kind, [](FaultRule&) {});
}

std::string text_of(std::span<const u8> frame) {
  return std::string{frame.begin(), frame.end()};
}

// ---------------------------------------------------------------------------
// FaultPlan

TEST(FaultPlanTest, JsonRoundTripPreservesEveryField) {
  FaultPlan plan;
  plan.seed = 42;
  plan.add(rule_of(FaultKind::kDrop, [](FaultRule& r) {
    r.port = obs::LinkPort::kClock;
    r.dir = obs::LinkDir::kTx;
    r.probability = 0.25;
    r.first_frame = 3;
    r.last_frame = 90;
    r.max_events = 5;
  }));
  plan.add(rule_of(FaultKind::kDisconnect, [](FaultRule& r) {
    r.node = 2;
    r.burst = 40;
    r.max_events = 1;
  }));
  plan.add(rule_of(FaultKind::kDelay, [](FaultRule& r) {
    r.delay = std::chrono::microseconds{750};
  }));

  auto round = plan_from_json(plan_to_json(plan));
  ASSERT_TRUE(round.ok()) << round.status();
  const FaultPlan& p = round.value();
  EXPECT_EQ(p.seed, 42u);
  ASSERT_EQ(p.rules.size(), 3u);
  EXPECT_EQ(p.rules[0].kind, FaultKind::kDrop);
  EXPECT_EQ(p.rules[0].port, obs::LinkPort::kClock);
  EXPECT_EQ(p.rules[0].dir, obs::LinkDir::kTx);
  EXPECT_DOUBLE_EQ(p.rules[0].probability, 0.25);
  EXPECT_EQ(p.rules[0].first_frame, 3u);
  EXPECT_EQ(p.rules[0].last_frame, 90u);
  EXPECT_EQ(p.rules[0].max_events, 5u);
  EXPECT_EQ(p.rules[1].kind, FaultKind::kDisconnect);
  EXPECT_EQ(p.rules[1].node, 2u);
  EXPECT_EQ(p.rules[1].burst, 40u);
  EXPECT_EQ(p.rules[2].kind, FaultKind::kDelay);
  EXPECT_EQ(p.rules[2].delay.count(), 750);
}

TEST(FaultPlanTest, ParserRejectsMalformedPlans) {
  EXPECT_FALSE(plan_from_json("not json at all").ok());
  EXPECT_FALSE(plan_from_json(R"({"rules": 7})").ok());
  EXPECT_FALSE(plan_from_json(R"({"rules": [{"kind": "melt"}]})").ok());
  EXPECT_FALSE(
      plan_from_json(R"({"rules": [{"kind": "drop", "port": "usb"}]})").ok());
  EXPECT_FALSE(
      plan_from_json(R"({"rules": [{"kind": "drop", "dir": "up"}]})").ok());
  // Seed-only plan: valid but unarmed.
  auto empty = plan_from_json(R"({"seed": 9})");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty.value().armed());
  EXPECT_EQ(empty.value().seed, 9u);
}

TEST(FaultPlanTest, ValidateRejectsImpossibleRules) {
  FaultPlan bad_probability;
  bad_probability.add(
      rule_of(FaultKind::kDrop, [](FaultRule& r) { r.probability = 1.5; }));
  EXPECT_FALSE(bad_probability.validate().ok());

  FaultPlan inverted_window;
  inverted_window.add(rule_of(FaultKind::kDrop, [](FaultRule& r) {
    r.first_frame = 10;
    r.last_frame = 2;
  }));
  EXPECT_FALSE(inverted_window.validate().ok());

  FaultPlan zero_burst;
  zero_burst.add(
      rule_of(FaultKind::kDisconnect, [](FaultRule& r) { r.burst = 0; }));
  EXPECT_FALSE(zero_burst.validate().ok());
}

TEST(FaultPlanTest, LosslessMeansOnlyDelayAndStall) {
  FaultPlan plan;
  plan.add(rule_of(FaultKind::kDelay));
  plan.add(rule_of(FaultKind::kStall));
  EXPECT_TRUE(plan.lossless());
  plan.add(rule_of(FaultKind::kDuplicate));
  EXPECT_FALSE(plan.lossless());
}

// ---------------------------------------------------------------------------
// FaultSchedule

/// The decision trace of `n` frames on one lane, as fault-kind names.
std::vector<std::string> lane_trace(FaultSchedule& schedule, u32 node,
                                    obs::LinkPort port, obs::LinkDir dir,
                                    int n) {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    const auto event = schedule.next(node, port, dir, 64);
    out.push_back(event.has_value() ? std::string(to_string(event->kind))
                                    : std::string("-"));
  }
  return out;
}

TEST(FaultScheduleTest, SameSeedReplaysTheSameDecisions) {
  FaultPlan plan;
  plan.seed = 7;
  plan.add(
      rule_of(FaultKind::kDrop, [](FaultRule& r) { r.probability = 0.3; }));
  FaultSchedule a{plan};
  FaultSchedule b{plan};
  const auto trace_a =
      lane_trace(a, 0, obs::LinkPort::kData, obs::LinkDir::kTx, 200);
  EXPECT_EQ(trace_a,
            lane_trace(b, 0, obs::LinkPort::kData, obs::LinkDir::kTx, 200));

  FaultPlan other = plan;
  other.seed = 8;
  FaultSchedule c{other};
  EXPECT_NE(trace_a,
            lane_trace(c, 0, obs::LinkPort::kData, obs::LinkDir::kTx, 200));
  EXPECT_GT(a.injected(), 0u);
}

TEST(FaultScheduleTest, LanesDrawFromIndependentStreams) {
  // Pumping one lane must not shift another lane's decisions: each
  // (rule, lane) stream is seeded from the lane identity, not creation or
  // interleaving order.
  FaultPlan plan;
  plan.seed = 11;
  plan.add(
      rule_of(FaultKind::kDrop, [](FaultRule& r) { r.probability = 0.3; }));
  FaultSchedule undisturbed{plan};
  FaultSchedule interleaved{plan};
  (void)lane_trace(interleaved, 1, obs::LinkPort::kClock, obs::LinkDir::kRx,
                   50);
  EXPECT_EQ(
      lane_trace(undisturbed, 0, obs::LinkPort::kData, obs::LinkDir::kTx, 100),
      lane_trace(interleaved, 0, obs::LinkPort::kData, obs::LinkDir::kTx,
                 100));
}

TEST(FaultScheduleTest, WindowAndBudgetBoundTheRule) {
  FaultPlan windowed;
  windowed.add(rule_of(FaultKind::kDrop, [](FaultRule& r) {
    r.first_frame = 2;
    r.last_frame = 4;
  }));
  FaultSchedule ws{windowed};
  EXPECT_EQ(lane_trace(ws, 0, obs::LinkPort::kData, obs::LinkDir::kTx, 7),
            (std::vector<std::string>{"-", "-", "drop", "drop", "drop", "-",
                                      "-"}));

  FaultPlan budgeted;
  budgeted.add(
      rule_of(FaultKind::kCorrupt, [](FaultRule& r) { r.max_events = 3; }));
  FaultSchedule bs{budgeted};
  EXPECT_EQ(lane_trace(bs, 0, obs::LinkPort::kData, obs::LinkDir::kTx, 6),
            (std::vector<std::string>{"corrupt", "corrupt", "corrupt", "-",
                                      "-", "-"}));
  EXPECT_EQ(bs.injected(), 3u);
}

TEST(FaultScheduleTest, DisconnectBlacksOutTheBurst) {
  FaultPlan plan;
  plan.add(rule_of(FaultKind::kDisconnect, [](FaultRule& r) {
    r.max_events = 1;
    r.burst = 3;
  }));
  FaultSchedule schedule{plan};
  // Frame 0 fires the rule; frames 1 and 2 fall inside the blackout; the
  // budget is spent so frame 3 passes clean.
  EXPECT_EQ(
      lane_trace(schedule, 0, obs::LinkPort::kData, obs::LinkDir::kTx, 5),
      (std::vector<std::string>{"disconnect", "disconnect", "disconnect", "-",
                                "-"}));
  EXPECT_EQ(schedule.injected(), 3u);
}

// ---------------------------------------------------------------------------
// fault::inject over an inproc pair

/// hw-side injected endpoint + raw board endpoint for one port.
struct InjectedPair {
  net::ChannelPtr hw;
  net::ChannelPtr board;
  std::shared_ptr<FaultSchedule> schedule;

  explicit InjectedPair(FaultPlan plan) {
    auto [a, b] = net::make_inproc_channel_pair();
    schedule = compile(plan, nullptr);
    hw = inject(std::move(a), schedule, obs::LinkPort::kData);
    board = std::move(b);
  }
};

TEST(FaultInjectTest, NullOrUnarmedScheduleIsZeroHop) {
  auto [a, b] = net::make_inproc_channel_pair();
  net::Channel* raw = a.get();
  auto same = inject(std::move(a), nullptr, obs::LinkPort::kData);
  EXPECT_EQ(same.get(), raw);
  EXPECT_EQ(compile(FaultPlan{}, nullptr), nullptr);
  b->close();
}

TEST(FaultInjectTest, DropsExactlyTheScheduledFrame) {
  FaultPlan plan;
  plan.add(rule_of(FaultKind::kDrop, [](FaultRule& r) {
    r.dir = obs::LinkDir::kTx;
    r.max_events = 1;
  }));
  InjectedPair pair{plan};
  ASSERT_TRUE(pair.hw->send(bytes_of("lost")).ok());
  ASSERT_TRUE(pair.hw->send(bytes_of("kept")).ok());
  auto got = pair.board->recv(1000ms);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(text_of(got.value()), "kept");
  EXPECT_EQ(pair.schedule->injected(), 1u);
}

TEST(FaultInjectTest, DuplicatesTheScheduledFrame) {
  FaultPlan plan;
  plan.add(rule_of(FaultKind::kDuplicate, [](FaultRule& r) {
    r.dir = obs::LinkDir::kTx;
    r.max_events = 1;
  }));
  InjectedPair pair{plan};
  ASSERT_TRUE(pair.hw->send(bytes_of("twin")).ok());
  for (int i = 0; i < 2; ++i) {
    auto got = pair.board->recv(1000ms);
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(text_of(got.value()), "twin") << i;
  }
}

TEST(FaultInjectTest, ReordersAdjacentFrames) {
  FaultPlan plan;
  plan.add(rule_of(FaultKind::kReorder, [](FaultRule& r) {
    r.dir = obs::LinkDir::kTx;
    r.max_events = 1;
  }));
  InjectedPair pair{plan};
  ASSERT_TRUE(pair.hw->send(bytes_of("first")).ok());   // held
  ASSERT_TRUE(pair.hw->send(bytes_of("second")).ok());  // overtakes
  auto a = pair.board->recv(1000ms);
  auto b = pair.board->recv(1000ms);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(text_of(a.value()), "second");
  EXPECT_EQ(text_of(b.value()), "first");
}

TEST(FaultInjectTest, CorruptsOneByteInPlace) {
  FaultPlan plan;
  plan.add(rule_of(FaultKind::kCorrupt, [](FaultRule& r) {
    r.dir = obs::LinkDir::kTx;
    r.max_events = 1;
  }));
  InjectedPair pair{plan};
  ASSERT_TRUE(pair.hw->send(bytes_of("pristine")).ok());
  auto got = pair.board->recv(1000ms);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().size(), 8u);
  int diffs = 0;
  const std::string sent = "pristine";
  for (std::size_t i = 0; i < sent.size(); ++i) {
    diffs += got.value()[i] != static_cast<u8>(sent[i]) ? 1 : 0;
  }
  EXPECT_EQ(diffs, 1);  // exactly one byte XOR-flipped
}

TEST(FaultInjectTest, RxFaultsApplyOnTheReceivePath) {
  FaultPlan plan;
  plan.add(rule_of(FaultKind::kDrop, [](FaultRule& r) {
    r.dir = obs::LinkDir::kRx;
    r.max_events = 1;
  }));
  InjectedPair pair{plan};
  ASSERT_TRUE(pair.board->send(bytes_of("eaten")).ok());
  ASSERT_TRUE(pair.board->send(bytes_of("served")).ok());
  auto got = pair.hw->recv(1000ms);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(text_of(got.value()), "served");
}

// ---------------------------------------------------------------------------
// Recovery layer

RecoveryConfig fast_recovery() {
  RecoveryConfig config;
  config.enabled = true;
  config.rto = 2ms;
  config.rto_max = 20ms;
  return config;
}

TEST(ReliableTest, RetransmissionSurvivesHeavyDrops) {
  // A 30% drop rate on the hw->board direction (payloads AND acks both
  // cross the injector) still delivers every frame exactly once, in order.
  FaultPlan plan;
  plan.seed = 3;
  plan.add(
      rule_of(FaultKind::kDrop, [](FaultRule& r) { r.probability = 0.3; }));
  auto [a, b] = net::make_inproc_channel_pair();
  auto schedule = compile(plan, nullptr);
  auto hw = reliable(inject(std::move(a), schedule, obs::LinkPort::kData),
                     fast_recovery(), nullptr, "hw");
  auto board = reliable(std::move(b), fast_recovery(), nullptr, "board");

  constexpr int kFrames = 40;
  auto* hw_rel = static_cast<ReliableChannel*>(hw.get());
  std::atomic<bool> sender_done{false};
  std::thread sender([&] {
    for (int i = 0; i < kFrames; ++i) {
      ASSERT_TRUE(hw->send(bytes_of("frame-" + std::to_string(i))).ok());
    }
    // flush keeps pumping retransmissions while the receiver drains; a
    // dropped tail frame would otherwise never be repaired.
    ASSERT_TRUE(hw_rel->flush(10000ms).ok());
    sender_done = true;
  });
  for (int i = 0; i < kFrames; ++i) {
    auto got = board->recv(5000ms);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(text_of(got.value()), "frame-" + std::to_string(i));
  }
  // A live peer keeps servicing its side of the link (the board pumps
  // until Shutdown in the real protocol): if the final cumulative ack got
  // dropped, the sender keeps retransmitting and needs our re-acks.
  while (!sender_done) {
    (void)board->try_recv();
    std::this_thread::sleep_for(std::chrono::microseconds{200});
  }
  sender.join();
  EXPECT_GT(schedule->injected(), 0u);
  EXPECT_EQ(hw_rel->unacked(), 0u);
}

TEST(ReliableTest, RedeliveredFramesAreFilteredAndReAcked) {
  auto [a, b] = net::make_inproc_channel_pair();
  auto board = reliable(std::move(b), fast_recovery(), nullptr, "board");
  auto* rel = static_cast<ReliableChannel*>(board.get());
  // Handcrafted peer: the same seq twice, as a retransmission would.
  ASSERT_TRUE(a->send(wire::encode_payload(1, 0, bytes_of("once"))).ok());
  ASSERT_TRUE(a->send(wire::encode_payload(1, 0, bytes_of("once"))).ok());
  auto got = board->recv(1000ms);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(text_of(got.value()), "once");
  auto none = board->try_recv();
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none.value().has_value());
  EXPECT_EQ(rel->dup_filtered(), 1u);
  // Both deliveries were acked (the re-ack stops the peer's retransmits).
  int acks = 0;
  while (true) {
    auto frame = a->try_recv();
    ASSERT_TRUE(frame.ok());
    if (!frame.value().has_value()) break;
    EXPECT_EQ((*frame.value())[0], wire::kAck);
    ++acks;
  }
  EXPECT_EQ(acks, 2);
}

TEST(ReliableTest, CrcRejectsCorruptionAnywhereInTheFrame) {
  auto [a, b] = net::make_inproc_channel_pair();
  auto board = reliable(std::move(b), fast_recovery(), nullptr, "board");
  auto* rel = static_cast<ReliableChannel*>(board.get());
  // Flip one payload byte and one header (seq) byte of two copies: both
  // must be dropped; the intact retransmission repairs the stream.
  Bytes wire_frame = wire::encode_payload(1, 0, bytes_of("fragile"));
  Bytes payload_hit = wire_frame;
  payload_hit[wire_frame.size() - 2] ^= 0x40;
  Bytes header_hit = wire_frame;
  header_hit[3] ^= 0x01;  // inside the seq field
  ASSERT_TRUE(a->send(payload_hit).ok());
  ASSERT_TRUE(a->send(header_hit).ok());
  auto nothing = board->try_recv();
  ASSERT_TRUE(nothing.ok());
  EXPECT_FALSE(nothing.value().has_value());
  EXPECT_EQ(rel->crc_dropped(), 2u);
  ASSERT_TRUE(a->send(wire_frame).ok());
  auto got = board->recv(1000ms);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(text_of(got.value()), "fragile");
}

TEST(ReliableTest, OutOfOrderFramesAreReassembled) {
  auto [a, b] = net::make_inproc_channel_pair();
  auto board = reliable(std::move(b), fast_recovery(), nullptr, "board");
  ASSERT_TRUE(a->send(wire::encode_payload(2, 0, bytes_of("two"))).ok());
  ASSERT_TRUE(a->send(wire::encode_payload(1, 0, bytes_of("one"))).ok());
  auto first = board->recv(1000ms);
  auto second = board->recv(1000ms);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(text_of(first.value()), "one");
  EXPECT_EQ(text_of(second.value()), "two");
}

TEST(ReliableTest, StaleAcksAreHarmless) {
  // A duplicated ack (the dup-filter re-ack path produces them) must not
  // confuse the sender's window.
  auto [a, b] = net::make_inproc_channel_pair();
  auto hw = reliable(std::move(a), fast_recovery(), nullptr, "hw");
  auto* rel = static_cast<ReliableChannel*>(hw.get());
  ASSERT_TRUE(hw->send(bytes_of("x")).ok());
  EXPECT_EQ(rel->unacked(), 1u);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(b->send(wire::encode_ack(1)).ok());
  ASSERT_TRUE(rel->flush(1000ms).ok());
  EXPECT_EQ(rel->unacked(), 0u);
  auto idle = hw->try_recv();  // pumps the two stale acks
  ASSERT_TRUE(idle.ok());
  EXPECT_FALSE(idle.value().has_value());
  EXPECT_EQ(rel->unacked(), 0u);
}

TEST(ReliableTest, GivesUpAfterBoundedRetransmitRounds) {
  RecoveryConfig config = fast_recovery();
  config.rto = 1ms;
  config.rto_max = 2ms;
  config.max_retransmit_rounds = 3;
  auto [a, b] = net::make_inproc_channel_pair();
  auto hw = reliable(std::move(a), config, nullptr, "hw");
  auto* rel = static_cast<ReliableChannel*>(hw.get());
  ASSERT_TRUE(hw->send(bytes_of("doomed")).ok());  // the peer never acks
  Status s = rel->flush(2000ms);
  EXPECT_EQ(s.code(), StatusCode::kAborted) << s;
  EXPECT_NE(s.message().find("gave up"), std::string::npos) << s;
  EXPECT_GE(rel->retransmits(), 3u);
  b->close();
}

TEST(ReliableTest, ClockSendFlushesSiblingsAcrossTheQuantumBoundary) {
  // The virtual-time barrier property end to end: a DATA frame held back by
  // a reorder fault is forced through (via retransmission) BEFORE the next
  // CLOCK frame crosses the link, so quantum contents never smear.
  FaultPlan plan;
  plan.add(rule_of(FaultKind::kReorder, [](FaultRule& r) {
    r.port = obs::LinkPort::kData;
    r.dir = obs::LinkDir::kTx;
    r.max_events = 1;
  }));
  auto schedule = compile(plan, nullptr);

  net::LinkPair pair = net::make_inproc_link_pair();
  pair.hw = inject_link(std::move(pair.hw), schedule);
  pair.hw = reliable_link(std::move(pair.hw), fast_recovery(), nullptr, "hw");
  pair.board = reliable_link(std::move(pair.board), fast_recovery(), nullptr,
                             "board");

  std::atomic<int> data_before_clock{-1};
  std::thread board([&] {
    int data_seen = 0;
    for (;;) {
      auto d = pair.board.data->try_recv();
      ASSERT_TRUE(d.ok());
      if (d.value().has_value()) ++data_seen;
      auto c = pair.board.clock->try_recv();
      ASSERT_TRUE(c.ok());
      if (c.value().has_value()) {
        data_before_clock = data_seen;
        return;
      }
      std::this_thread::sleep_for(200us);
    }
  });

  ASSERT_TRUE(pair.hw.data->send(bytes_of("quantum-data")).ok());
  ASSERT_TRUE(pair.hw.clock->send(bytes_of("tick")).ok());  // flushes DATA
  board.join();
  EXPECT_EQ(data_before_clock.load(), 1);
  auto* hw_data = static_cast<ReliableChannel*>(pair.hw.data.get());
  EXPECT_GE(hw_data->retransmits(), 1u);  // the retransmit punched through
}

TEST(ReliableTcpTest, RedialResyncsAfterTransportLoss) {
  net::TcpListener listener;
  const u16 port = listener.port();
  Result<net::ChannelPtr> dialed = Status{StatusCode::kInternal, "unset"};
  std::thread dialer([&] { dialed = net::connect_tcp_channel(port); });
  auto accepted = listener.accept(2000ms);
  dialer.join();
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  ASSERT_TRUE(dialed.ok()) << dialed.status();
  net::Channel* transport = accepted.value().get();

  RecoveryConfig config = fast_recovery();
  config.redial_backoff = 5ms;
  ReliableChannel hw{std::move(accepted).value(), config, nullptr, "hw",
                     [&listener] { return listener.accept(2000ms); }};
  ReliableChannel board{std::move(dialed).value(), config, nullptr, "board",
                        [port] { return net::connect_tcp_channel(port); }};

  ASSERT_TRUE(hw.send(bytes_of("before")).ok());
  auto first = board.recv(2000ms);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(text_of(first.value()), "before");

  // Tear the wire out under both endpoints; the next traffic must redial
  // (accept side re-accepts, dial side re-connects) and resync via kHello.
  std::thread receiver([&] {
    auto got = board.recv(10000ms);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(text_of(got.value()), "after");
  });
  transport->close();
  ASSERT_TRUE(hw.send(bytes_of("after")).ok());
  receiver.join();
  EXPECT_GE(hw.reconnects() + board.reconnects(), 1u);
}

// ---------------------------------------------------------------------------
// Fault markers in flight recordings

TEST(FaultMarkerTest, MarkersSurviveTheRecordingRoundTripAndAreSkipped) {
  obs::ObsConfig obs_cfg;
  obs_cfg.record.enabled = true;
  obs::Hub hub{obs_cfg};
  hub.hw_recorder().record(obs::LinkPort::kData, obs::LinkDir::kTx,
                           bytes_of("real"), 0);
  hub.hw_recorder().note_fault(obs::LinkPort::kData, obs::LinkDir::kTx,
                               "drop", 3);
  hub.hw_recorder().record(obs::LinkPort::kData, obs::LinkDir::kTx,
                           bytes_of("also-real"), 0);

  obs::Recording rec;
  rec.meta.side = "hw";
  rec.frames = hub.hw_recorder().snapshot();
  ASSERT_EQ(rec.frames.size(), 3u);
  EXPECT_EQ(rec.frames[1].flags, obs::kFrameFlagInjected);
  EXPECT_EQ(rec.frames[1].node, 3u);
  EXPECT_EQ(text_of(rec.frames[1].payload), "drop");

  const std::string path =
      ::testing::TempDir() + "/fault_marker_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  for (auto format :
       {obs::RecordingFormat::kBinary, obs::RecordingFormat::kJsonl}) {
    ASSERT_TRUE(obs::write_recording(path, rec, format).ok());
    auto back = obs::read_recording(path);
    ASSERT_TRUE(back.ok()) << back.status();
    ASSERT_EQ(back.value().frames.size(), 3u);
    EXPECT_EQ(back.value().frames[1].flags, obs::kFrameFlagInjected);
    EXPECT_EQ(text_of(back.value().frames[1].payload), "drop");
  }

  // The divergence checker treats markers as annotations: a clean reference
  // (no markers) still matches the faulted recording.
  obs::Recording clean = rec;
  std::erase_if(clean.frames, [](const obs::FrameRecord& f) {
    return (f.flags & obs::kFrameFlagInjected) != 0;
  });
  EXPECT_FALSE(obs::diff_recordings(clean, rec, nullptr).has_value());
  EXPECT_FALSE(obs::diff_recordings(rec, clean, nullptr).has_value());
}

TEST(FaultMarkerTest, ScheduleObserverReceivesEveryInjection) {
  FaultPlan plan;
  plan.add(
      rule_of(FaultKind::kDrop, [](FaultRule& r) { r.max_events = 2; }));
  FaultSchedule schedule{plan};
  std::vector<FaultEvent> seen;
  schedule.set_observer([&seen](const FaultEvent& e) { seen.push_back(e); });
  for (int i = 0; i < 5; ++i) {
    (void)schedule.next(1, obs::LinkPort::kInt, obs::LinkDir::kRx, 16);
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].kind, FaultKind::kDrop);
  EXPECT_EQ(seen[0].node, 1u);
  EXPECT_EQ(seen[0].port, obs::LinkPort::kInt);
  EXPECT_EQ(seen[0].dir, obs::LinkDir::kRx);
  EXPECT_EQ(seen[1].frame_index, 1u);
}

}  // namespace
}  // namespace vhp::fault

// ---------------------------------------------------------------------------
// SyncCoordinator eviction / rejoin (fiber-free, like fabric_test)

namespace vhp::fabric {
namespace {

using namespace std::chrono_literals;

TEST(SyncEvictionTest, ValidateRequiresAWatchdogForEviction) {
  SyncConfig cfg;
  cfg.watchdog = 0ms;
  cfg.evict_after_misses = 2;
  EXPECT_FALSE(cfg.validate(1).ok());
  cfg.watchdog = 100ms;
  EXPECT_TRUE(cfg.validate(1).ok());
}

TEST(SyncEvictionTest, WatchdogMessageReportsWaitAndQuantum) {
  // ISSUE 5 satellite: the fail-fast straggler Status must carry the
  // wall-clock actually waited, the configured bound and the expected
  // quantum — diagnosable without logs.
  auto [m0, b0] = net::make_inproc_channel_pair();
  SyncConfig cfg;
  cfg.t_sync = 10;
  cfg.watchdog = 150ms;
  SyncCoordinator coord{cfg, {m0.get()}, {"mute"}};
  ASSERT_TRUE(net::send_msg(*b0, net::TimeAck{0}).ok());  // handshake only
  ASSERT_TRUE(coord.handshake().ok());
  const Status status = coord.run_barrier(10);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("expired after"), std::string::npos)
      << status;
  EXPECT_NE(status.message().find("(bound 150 ms)"), std::string::npos)
      << status;
  EXPECT_NE(status.message().find("mute (node 0, quantum 10 cycles, "
                                  "last granted at cycle 10)"),
            std::string::npos)
      << status;
  b0->close();
}

/// A node emulator thread that answers ticks only while `answering`, and
/// volunteers one frozen TIME_ACK whenever `announce` is raised (the rejoin
/// handshake).
std::thread spawn_flaky_node(net::Channel& clock, std::atomic<bool>& answering,
                             std::atomic<bool>& announce) {
  return std::thread([&clock, &answering, &announce] {
    ASSERT_TRUE(net::send_msg(clock, net::TimeAck{0}).ok());
    u64 board_tick = 0;
    for (;;) {
      auto msg = net::recv_msg(clock, 25ms);
      if (!msg.ok()) {
        if (msg.status().code() != StatusCode::kDeadlineExceeded) return;
        if (announce.exchange(false)) {
          ASSERT_TRUE(net::send_msg(clock, net::TimeAck{board_tick}).ok());
        }
        continue;
      }
      if (std::holds_alternative<net::Shutdown>(msg.value())) return;
      ASSERT_TRUE(std::holds_alternative<net::ClockTick>(msg.value()));
      if (!answering.load()) continue;  // swallow the grant: straggle
      board_tick += std::get<net::ClockTick>(msg.value()).n_ticks;
      ASSERT_TRUE(net::send_msg(clock, net::TimeAck{board_tick}).ok());
    }
  });
}

TEST(SyncEvictionTest, EvictsAfterKMissesAndSurvivorsContinue) {
  auto [m0, b0] = net::make_inproc_channel_pair();
  auto [m1, b1] = net::make_inproc_channel_pair();
  SyncConfig cfg;
  cfg.t_sync = 10;
  cfg.watchdog = 100ms;
  cfg.evict_after_misses = 2;
  SyncCoordinator coord{cfg, {m0.get(), m1.get()}, {"good", "flaky"}};

  std::atomic<bool> good_on{true}, good_announce{false};
  std::atomic<bool> flaky_on{true}, flaky_announce{false};
  std::thread good = spawn_flaky_node(*b0, good_on, good_announce);
  std::thread flaky = spawn_flaky_node(*b1, flaky_on, flaky_announce);

  ASSERT_TRUE(coord.handshake().ok());
  ASSERT_TRUE(coord.run_barrier(10).ok());
  EXPECT_EQ(coord.alive_count(), 2u);

  flaky_on = false;
  // Two consecutive watchdog expiries evict "flaky"; the barrier still
  // completes for the survivor instead of failing the fabric.
  ASSERT_TRUE(coord.run_barrier(20).ok());
  EXPECT_FALSE(coord.alive(1));
  EXPECT_TRUE(coord.alive(0));
  EXPECT_EQ(coord.alive_count(), 1u);
  EXPECT_EQ(coord.evictions(), 1u);

  // Dead nodes are not ticked and do not gate next_due.
  ASSERT_TRUE(coord.run_barrier(30).ok());
  EXPECT_EQ(coord.next_due(), 40u);

  // Rejoin: the node announces itself frozen, then takes grants again.
  flaky_on = true;
  flaky_announce = true;
  ASSERT_TRUE(coord.rejoin(1, 30).ok());
  EXPECT_TRUE(coord.alive(1));
  EXPECT_EQ(coord.alive_count(), 2u);
  EXPECT_EQ(coord.rejoins(), 1u);
  ASSERT_TRUE(coord.run_barrier(40).ok());

  EXPECT_FALSE(coord.rejoin(0, 40).ok());  // alive node: precondition fails
  coord.shutdown();
  good.join();
  flaky.join();
}

TEST(FabricEvictionTest, FabricOutlivesAnEvictedNodeAndReadmitsIt) {
  // N=4 fabric, all external parties on plain threads: node 3 goes silent,
  // is evicted after 2 missed watchdog intervals, the 3 survivors keep
  // simulating, and the node rejoins later.
  auto cfg = FabricConfigBuilder{}
                 .t_sync(10)
                 .watchdog(100ms)
                 .evict_after(2)
                 .add_external_node("a")
                 .add_external_node("b")
                 .add_external_node("c")
                 .add_external_node("flaky")
                 .build_or_throw();
  Fabric fab{cfg};

  std::array<net::CosimLink, 4> links;
  for (std::size_t i = 0; i < 4; ++i) links[i] = fab.take_board_link(i);
  std::array<std::atomic<bool>, 4> answering{true, true, true, true};
  std::array<std::atomic<bool>, 4> announce{false, false, false, false};
  std::vector<std::thread> parties;
  for (std::size_t i = 0; i < 4; ++i) {
    parties.push_back(
        spawn_flaky_node(*links[i].clock, answering[i], announce[i]));
  }

  ASSERT_TRUE(fab.run_cycles(20).ok());
  EXPECT_EQ(fab.alive_nodes(), 4u);

  answering[3] = false;
  ASSERT_TRUE(fab.run_cycles(10).ok());  // eviction barrier
  EXPECT_FALSE(fab.node_alive(3));
  EXPECT_EQ(fab.alive_nodes(), 3u);
  EXPECT_EQ(fab.coordinator().evictions(), 1u);
  ASSERT_TRUE(fab.run_cycles(30).ok());  // survivors keep the barrier live

  answering[3] = true;
  announce[3] = true;
  ASSERT_TRUE(fab.rejoin_node(3).ok());
  EXPECT_TRUE(fab.node_alive(3));
  EXPECT_EQ(fab.alive_nodes(), 4u);
  ASSERT_TRUE(fab.run_cycles(20).ok());
  EXPECT_EQ(fab.coordinator().rejoins(), 1u);

  fab.finish();
  for (auto& t : parties) t.join();
}

}  // namespace
}  // namespace vhp::fabric
