// The many-core board tier (DESIGN.md §13): SMP kernel dispatch (affinity,
// per-core budgets, cross-core interrupt routing), board-wide freeze
// semantics, lookahead across cores, and full 4-core ISS sessions with the
// memory hierarchy in the timing path.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "vhp/cosim/session.hpp"
#include "vhp/iss/assemble.hpp"
#include "vhp/iss/multicore.hpp"
#include "vhp/net/inproc.hpp"
#include "vhp/net/message.hpp"
#include "vhp/rtos/kernel.hpp"
#include "vhp/rtos/sync.hpp"

namespace vhp {
namespace {

using rtos::Kernel;
using rtos::KernelConfig;
using rtos::OsState;
using rtos::Semaphore;
using rtos::Thread;

KernelConfig smp_cfg(u32 cores, bool budget = false) {
  KernelConfig cfg;
  cfg.cycles_per_tick = 10;
  cfg.timeslice_ticks = 5;
  cfg.budget_mode = budget;
  cfg.cores = cores;
  return cfg;
}

TEST(SmpKernel, AffinityPinsThreadsToTheirCores) {
  Kernel k{smp_cfg(3)};
  std::vector<u32> seen(3, 99);
  for (u32 c = 0; c < 3; ++c) {
    auto& t = k.spawn("pinned" + std::to_string(c), 8,
                      [&k, &seen, c] { seen[c] = k.current_core(); });
    t.set_affinity(static_cast<int>(c));
  }
  k.run(/*until_quiescent=*/true);
  EXPECT_EQ(seen, (std::vector<u32>{0, 1, 2}));
}

TEST(SmpKernel, AnyCoreThreadsRunWithoutAffinity) {
  Kernel k{smp_cfg(2)};
  int ran = 0;
  k.spawn("anywhere", 8, [&] { ++ran; });
  k.run(true);
  EXPECT_EQ(ran, 1);
}

TEST(SmpKernel, InterruptPinnedToCoreKPreemptsOnlyCoreK) {
  // The satellite contract: a DSR routed to core 1 wakes its handler on
  // core 1 ahead of core 1's lower-priority work, while the core-0 thread
  // that raised the interrupt keeps running uninterrupted through its own
  // consume() — the wake must not set the resched flag on core 0.
  Kernel k{smp_cfg(2)};
  std::vector<std::string> events;
  Semaphore irq_work{k, 0};

  auto& handler = k.spawn("handler", 1, [&] {
    irq_work.wait();
    events.push_back("handler");
  });
  handler.set_affinity(1);

  k.interrupts().attach(
      7,
      rtos::InterruptHandler{
          [](u32) { return rtos::IsrResult::kCallDsr; },
          [&](u32) { irq_work.post(); }},
      /*core=*/1);

  auto& w1 = k.spawn("w1", 5, [&] {
    events.push_back("w1-before");
    k.yield();  // reschedule point: handler (higher prio, same core) wins
    events.push_back("w1-after");
  });
  w1.set_affinity(1);

  auto& w0 = k.spawn("w0", 4, [&] {
    events.push_back("w0-a");
    k.interrupts().raise(7);  // DSR queued for core 1
    events.push_back("w0-b");
    k.consume(30);  // no tick crossing, and no resched from the cross-core wake
    events.push_back("w0-c");
  });
  w0.set_affinity(0);

  k.run(true);

  // Core 0's thread ran to completion contiguously: the cross-core wake
  // never preempted it.
  const auto idx = [&](const std::string& e) {
    return std::find(events.begin(), events.end(), e) - events.begin();
  };
  EXPECT_EQ(idx("w0-b"), idx("w0-a") + 1);
  EXPECT_EQ(idx("w0-c"), idx("w0-b") + 1);
  // On core 1 the handler preempted the lower-priority worker.
  EXPECT_LT(idx("handler"), idx("w1-after"));
  EXPECT_EQ(k.interrupts().core_of(7), 1u);
}

TEST(SmpKernel, DsrRoutingFollowsRoute) {
  Kernel k{smp_cfg(2)};
  u32 dsr_core = 99;
  k.interrupts().attach(
      9, rtos::InterruptHandler{[](u32) { return rtos::IsrResult::kCallDsr; },
                                [&](u32) { dsr_core = k.current_core(); }});
  EXPECT_EQ(k.interrupts().core_of(9), 0u);
  k.interrupts().route(9, 1);
  EXPECT_EQ(k.interrupts().core_of(9), 1u);
  k.spawn("raiser", 8, [&] { k.interrupts().raise(9); });
  k.run(true);
  // The DSR executed in core 1's dispatch context.
  EXPECT_EQ(dsr_core, 1u);
}

TEST(SmpBudget, FreezeOnlyWhenEveryCoreDrained) {
  // One grant feeds both cores; the board-wide freeze (the TIME_ACK) fires
  // once, after the second core's budget is gone too.
  Kernel k{smp_cfg(2, /*budget=*/true)};
  int freezes = 0;
  k.set_freeze_callback([&](SwTicks) {
    ++freezes;
    k.shutdown();
  });
  bool w0_done = false, w1_done = false;
  auto& w0 = k.spawn("w0", 8, [&] {
    k.consume(100);
    w0_done = true;
  });
  w0.set_affinity(0);
  auto& w1 = k.spawn("w1", 8, [&] {
    k.consume(40);  // leftover 60 cycles drain through core 1's idle thread
    w1_done = true;
  });
  w1.set_affinity(1);
  k.grant_cycles(100);
  k.run();
  EXPECT_EQ(freezes, 1);
  EXPECT_TRUE(w0_done);
  EXPECT_TRUE(w1_done);
  EXPECT_EQ(k.core_cycle_count(0), 100u);
  EXPECT_EQ(k.core_cycle_count(1), 100u);  // 40 app + 60 idle
  EXPECT_EQ(k.core_budget_cycles(0), 0u);
  EXPECT_EQ(k.core_budget_cycles(1), 0u);
}

TEST(SmpBudget, GrantFansOutPerCore) {
  Kernel k{smp_cfg(3, true)};
  k.grant_cycles(50);
  for (u32 c = 0; c < 3; ++c) EXPECT_EQ(k.core_budget_cycles(c), 50u);
  EXPECT_EQ(k.stats().grants, 1u);
}

TEST(SmpBudget, StarvedThreadOnAnyCoreYieldsZeroLookahead) {
  Kernel k{smp_cfg(2, true)};
  std::vector<std::optional<u64>> lookaheads;
  k.set_freeze_callback([&](SwTicks) {
    lookaheads.push_back(k.next_event_cycles());
    if (lookaheads.size() == 1) {
      k.grant_cycles(100);  // lets the worker finish and delay
    } else {
      k.shutdown();
    }
  });
  auto& w1 = k.spawn("w1", 8, [&] {
    k.consume(60);           // first freeze happens mid-consume: lookahead 0
    k.delay(SwTicks{5});     // second freeze: lookahead = distance to alarm
  });
  w1.set_affinity(1);
  k.run();
  ASSERT_GE(lookaheads.size(), 2u);
  ASSERT_TRUE(lookaheads[0].has_value());
  EXPECT_EQ(*lookaheads[0], 0u);  // core-1 thread starved mid-consume
  ASSERT_TRUE(lookaheads[1].has_value());
  // 5 ticks ahead on the shared RTC; every core drained the same grants, so
  // the core-0 distance is the board-wide minimum.
  EXPECT_GT(*lookaheads[1], 0u);
  EXPECT_LE(*lookaheads[1], 5u * k.cycles_per_tick());
}

TEST(SmpKernel, CrossCoreWakeupsDrainDeterministically) {
  // A producer pinned to core 0 feeds two consumers pinned to core 1; the
  // whole interleaving must be identical run over run.
  auto run_once = [] {
    Kernel k{smp_cfg(2)};
    std::vector<std::string> events;
    Semaphore items{k, 0};
    for (int c = 0; c < 2; ++c) {
      auto& t = k.spawn("consumer" + std::to_string(c), 6, [&, c] {
        for (int i = 0; i < 3; ++i) {
          items.wait();
          events.push_back("c" + std::to_string(c) + "-" + std::to_string(i));
          k.consume(7);
        }
      });
      t.set_affinity(1);
    }
    auto& p = k.spawn("producer", 5, [&] {
      for (int i = 0; i < 6; ++i) {
        items.post();
        events.push_back("p" + std::to_string(i));
        k.consume(13);
      }
    });
    p.set_affinity(0);
    k.run(true);
    return events;
  };
  const auto first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_EQ(first.size(), 12u);
}

// ---------- many-core ISS sessions ----------

/// SPMD firmware: every core asks for its id (syscall 4), writes
/// 0xC0DE0000 | id to RAM at 0x5000 + 4*id, then exits with its id.
iss::Asm spmd_marker_program() {
  iss::Asm a;
  a.addi(17, 0, 4);  // a7 = core id syscall
  a.ecall();
  a.addi(5, 10, 0);        // x5 = id
  a.li(6, 0xC0DE0000u);
  a.or_(6, 6, 5);          // marker
  a.slli(7, 5, 2);
  a.li(8, 0x5000);
  a.add(8, 8, 7);
  a.sw(6, 8, 0);
  a.addi(17, 0, 0);  // exit(id)
  a.ecall();
  return a;
}

TEST(MultiCoreBoard, FourSpmdCoresRunBehindTheHierarchy) {
  auto pair = net::make_inproc_link_pair();
  board::BoardConfig cfg;
  cfg.free_running = true;
  cfg.rtos.cores = 4;
  cfg.memory = mem::MemConfig{};
  board::Board board{cfg, std::move(pair.board)};
  ASSERT_NE(board.memory_system(), nullptr);

  sim::Memory ram{"ram"};
  spmd_marker_program().load_into(ram, 0x1000);

  iss::MultiCoreBoardConfig mc;
  mc.entry_pcs = {0x1000, 0x1000, 0x1000, 0x1000};
  iss::MultiCoreBoard cores{board, ram, mc};

  std::thread hw{[&] {
    while (!cores.all_exited()) std::this_thread::yield();
    ASSERT_TRUE(net::send_msg(*pair.hw.clock, net::Shutdown{}).ok());
  }};
  board.run();
  hw.join();

  for (u32 c = 0; c < 4; ++c) {
    EXPECT_TRUE(cores.core(c).exited());
    EXPECT_EQ(cores.core(c).exit_code(), c);
    EXPECT_EQ(ram.read_u32(0x5000 + 4 * c), 0xC0DE0000u | c);
    // Every core fetched through its own cold I-cache.
    EXPECT_GT(cores.memory().port(c).icache().misses(), 0u);
    EXPECT_GT(cores.memory().port(c).pipeline().stats().instructions, 0u);
  }
  // All four instruction streams hit the same banks (same program): the
  // shared memory saw real traffic.
  EXPECT_GT(cores.memory().memory().requests(), 0u);
}

TEST(MultiCoreSession, TimedFourCoreSessionIsDeterministic) {
  // Full session: timed co-simulation, 4-core board with the hierarchy,
  // parallel master kernel — two identical runs must agree on every
  // virtual-time observable (the cross-core wakeup drain is deterministic
  // under .parallel(N)).
  auto run_once = [] {
    auto cfg = cosim::SessionConfigBuilder{}
                   .inproc()
                   .t_sync(200)
                   .cycles_per_tick(10)
                   .cores(4)
                   .memory(mem::MemConfig{})
                   .parallel(2)
                   .build_or_throw();
    cosim::CosimSession session{cfg};

    sim::Memory ram{"ram"};
    spmd_marker_program().load_into(ram, 0x1000);
    iss::MultiCoreBoardConfig mc;
    mc.entry_pcs = {0x1000, 0x1000, 0x1000, 0x1000};
    iss::MultiCoreBoard cores{session.board(), ram, mc};

    session.start_board();
    EXPECT_TRUE(session.run_cycles(3000).ok());
    session.finish();

    auto& k = session.board().kernel();
    std::vector<u64> observables{k.tick_count().value(),
                                 cores.memory().memory().requests(),
                                 cores.memory().memory().conflicts()};
    for (u32 c = 0; c < 4; ++c) {
      observables.push_back(k.core_cycle_count(c));
      observables.push_back(cores.memory().port(c).icache().misses());
      observables.push_back(
          cores.memory().port(c).pipeline().stats().total_cycles);
      observables.push_back(cores.core(c).exit_code());
      observables.push_back(cores.core(c).exited() ? 1 : 0);
    }
    return observables;
  };
  const auto first = run_once();
  EXPECT_EQ(first, run_once());
  // Sanity: the firmware actually completed inside the granted window.
  EXPECT_EQ(first.back(), 1u);
}

TEST(MultiCoreSession, SingleCoreDefaultKeepsFlatTiming) {
  // The legacy path: no cores()/memory() — the board has no memory system
  // and the kernel runs the single-core dispatch loop.
  auto cfg = cosim::SessionConfigBuilder{}.inproc().t_sync(100).build_or_throw();
  cosim::CosimSession session{cfg};
  EXPECT_EQ(session.board().memory_system(), nullptr);
  EXPECT_EQ(session.board().kernel().cores(), 1u);
  session.start_board();
  EXPECT_TRUE(session.run_cycles(500).ok());
  session.finish();
  // 500 sim cycles at 1 board cycle each, 100 cycles per tick -> 5 ticks:
  // the protocol arithmetic is untouched by the SMP machinery.
  EXPECT_EQ(session.board().kernel().tick_count().value(), 5u);
}

}  // namespace
}  // namespace vhp
