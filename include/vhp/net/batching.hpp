// Per-quantum frame batching (DESIGN.md §14).
//
// BatchingChannel buffers sent frames and hands the whole run to the
// inner transport as one send_many() — one writev on TCP, one publish +
// doorbell on shm — when flush() is called. The co-simulation protocol
// supplies the flush points (see the flush rules in DESIGN.md §14): the
// master flushes DATA and INT just before every CLOCK_TICK and after
// answering a DataReadReq; the board flushes DATA right after sending a
// DataReadReq and just before every TIME_ACK. Because the conservative
// barrier makes each side consume a quantum's traffic only at the
// quantum boundary anyway, deferring delivery to the boundary is
// invisible in virtual time — recordings stay bit-identical — while the
// syscall count drops from one per frame to one per quantum per port.
//
// The batcher wraps the *raw transport* (innermost, below latency /
// fault / recording decorators), so every layer above sees the exact
// frame sequence it would see unbatched and the receive path needs no
// changes at all. Only timed sessions may batch: a free-running board
// has no quantum boundary to flush at (SessionConfig::validate rejects
// the combination).
#pragma once

#include <string>

#include "vhp/net/channel.hpp"
#include "vhp/obs/hub.hpp"

namespace vhp::net {

struct BatchingConfig {
  /// Safety valve: auto-flush once this many bytes are pending, so a
  /// pathological quantum cannot buffer unbounded memory. Generous by
  /// default — the protocol flush points are the intended trigger.
  std::size_t max_pending_bytes = std::size_t{1} << 20;
  /// Auto-flush after this many pending frames (same safety valve).
  std::size_t max_pending_frames = 4096;
};

class BatchingChannel final : public Channel {
 public:
  /// `name` tags the obs counters: net.batch.<name>.frames / .flushes
  /// (frames ÷ flushes = frames-per-flush, the syscall amplification the
  /// batcher removed).
  BatchingChannel(ChannelPtr inner, BatchingConfig config = {},
                  obs::Hub* hub = nullptr, std::string name = {});
  ~BatchingChannel() override;

  Status send(std::span<const u8> frame) override;
  Status send_many(std::span<const Bytes> frames) override;
  Status flush() override;
  Result<Bytes> recv(
      std::optional<std::chrono::milliseconds> timeout) override;
  Result<std::optional<Bytes>> try_recv() override;
  void close() override;
  int readable_fd() override;

  /// Introspection for tests and the session_density bench.
  [[nodiscard]] u64 frames_batched() const;
  [[nodiscard]] u64 flushes() const;
  [[nodiscard]] std::size_t pending_frames() const;

 private:
  Status flush_locked();

  ChannelPtr inner_;
  BatchingConfig config_;
  mutable std::mutex mu_;  // sender-side state (send + flush may race)
  std::vector<Bytes> pending_;
  std::size_t pending_bytes_ = 0;
  u64 frames_batched_ = 0;
  u64 flushes_ = 0;
  obs::Counter* frames_counter_ = nullptr;
  obs::Counter* flushes_counter_ = nullptr;
};

/// Wraps the DATA and INT channels of one link side in batchers (CLOCK
/// stays direct: ticks/acks are the flush boundaries themselves and must
/// never sit in a buffer). `side` tags the counters ("hw", "board",
/// "node3.hw", ...). Returns the link unchanged when `enabled` is false.
[[nodiscard]] CosimLink batch_link(CosimLink link, bool enabled,
                                   const BatchingConfig& config,
                                   obs::Hub* hub, const std::string& side);

}  // namespace vhp::net
