// Link-latency emulation.
//
// The paper's board and host talk over 100 Mbit Ethernet through the eCos
// IP stack — a link whose latency is orders of magnitude above loopback.
// Reproducing the paper's absolute overhead ratios therefore needs a slower
// link; this decorator emulates one *uniformly* (every frame on the wrapped
// channel is delayed, not just sync packets), with optional deterministic
// jitter.
//
// Mechanism: the sending side prepends a monotonic timestamp plus the
// per-frame target latency; the receiving side strips it and waits until
// the frame's delivery time. Both endpoints of a link direction must be
// wrapped (wrap_link_pair does this for a whole 3-channel pair).
#pragma once

#include <chrono>

#include "vhp/common/rng.hpp"
#include "vhp/net/channel.hpp"

namespace vhp::net {

struct LinkEmulationConfig {
  /// One-way frame latency added on top of the real transport.
  std::chrono::microseconds latency{0};
  /// Uniform jitter in [0, jitter] added per frame (deterministic, seeded).
  std::chrono::microseconds jitter{0};
  u64 seed = 1;

  [[nodiscard]] bool enabled() const {
    return latency.count() > 0 || jitter.count() > 0;
  }
};

/// Wraps one channel endpoint. Frames sent through it carry a delivery
/// deadline; frames received through it are held until their deadline.
/// Both peers must be wrapped with the same config for symmetric delay.
[[nodiscard]] ChannelPtr emulate_latency(ChannelPtr inner,
                                         LinkEmulationConfig config);

/// Wraps all six endpoints of a link pair.
[[nodiscard]] LinkPair emulate_latency(LinkPair pair,
                                       LinkEmulationConfig config);

}  // namespace vhp::net
