// Shared-memory ring transport (DESIGN.md §14).
//
// ShmRingChannel carries the same u32-length-prefixed frames as the TCP
// transport, but over an mmap'd single-producer/single-consumer byte ring
// instead of a socket: a send is two memcpys (length prefix + payload,
// possibly split at the wrap point) and two atomic stores; no syscall
// touches the data path. The producer and consumer each keep a *cached*
// copy of the peer's index and only re-load the shared atomic when the
// cache says full/empty, so the hot path does one acquire load per
// refresh instead of one per frame (the classic Lamport SPSC
// optimization).
//
// Wakeups use eventfd doorbells, rung only when the other side said it
// is (or may be) waiting: the consumer's doorbell doubles as the
// channel's readable_fd() for event-loop integration, and arming it (by
// a blocking recv, or permanently by the first readable_fd() call) makes
// every publish ring it. The producer's "space" doorbell is rung by the
// consumer only while a writer is blocked on a full ring.
//
// The ring lives in MAP_SHARED|MAP_ANONYMOUS memory: both endpoints of a
// pair are in-process today (the svc session server's fast path), but
// the layout is fork-inheritable and contains no pointers, so a
// memfd-backed cross-process variant needs only a different allocation.
#pragma once

#include <cstddef>
#include <utility>

#include "vhp/net/channel.hpp"

namespace vhp::net {

/// One bidirectional channel over two SPSC rings. `capacity_bytes` is the
/// per-direction ring size (rounded up to a power of two, min 4 KiB); a
/// frame needs size + 4 bytes of ring space and must fit entirely, so
/// size the ring to several times the largest frame.
[[nodiscard]] std::pair<ChannelPtr, ChannelPtr> make_shm_channel_pair(
    std::size_t capacity_bytes = std::size_t{1} << 16);

/// A three-port co-simulation link over shm rings.
[[nodiscard]] LinkPair make_shm_link_pair(
    std::size_t capacity_bytes = std::size_t{1} << 16);

/// N independent shm links for the fabric (mirrors
/// make_inproc_link_fanout / make_tcp_link_fanout).
[[nodiscard]] std::vector<LinkPair> make_shm_link_fanout(
    std::size_t n, std::size_t capacity_bytes = std::size_t{1} << 16);

}  // namespace vhp::net
