// Link fan-out for the co-simulation fabric: N independent three-port links
// between one HW process and N boards. Each node gets its own LinkPair —
// there is no shared medium; the fabric's SyncCoordinator provides the only
// coupling between nodes (the N-party virtual-tick barrier).
#pragma once

#include <vector>

#include "vhp/net/channel.hpp"

namespace vhp::net {

/// N in-process links (the unit-test / single-process transport).
[[nodiscard]] std::vector<LinkPair> make_inproc_link_fanout(
    std::size_t n, std::size_t capacity = 1024);

/// N TCP loopback links, each with its own listener + ephemeral port
/// triple — the paper's board<->host medium, one socket set per board.
/// Both ends are returned; a multi-process fabric would instead publish
/// each listener's ports and keep only the hw side.
[[nodiscard]] Result<std::vector<LinkPair>> make_tcp_link_fanout(
    std::size_t n);

}  // namespace vhp::net
