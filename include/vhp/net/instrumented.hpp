// Observability decorator for co-simulation channels.
//
// Wraps any Channel so every frame is accounted in the MetricsRegistry
// (net.<side>.<port>.{tx,rx}_{frames,bytes}) and, when tracing, stamped on
// the timeline — making the sync-traffic volume of Figures 5/6 directly
// readable from a metrics dump instead of inferred from wall time.
//
// The wrap is applied only when observability is enabled (it adds a virtual
// hop and a few relaxed increments per frame), so the disabled path keeps
// the transport untouched.
#pragma once

#include "vhp/net/channel.hpp"
#include "vhp/obs/flight_recorder.hpp"
#include "vhp/obs/hub.hpp"

namespace vhp::net {

/// Wraps one channel; `name` keys the metric series ("hw.data", ...).
[[nodiscard]] ChannelPtr instrument_channel(ChannelPtr inner, obs::Hub& hub,
                                            const std::string& name);

/// Wraps all three ports of a link; `side` is "hw" or "board".
[[nodiscard]] CosimLink instrument_link(CosimLink link, obs::Hub& hub,
                                        const std::string& side);

/// Flight-recorder decorator: every frame sent or received on the channel is
/// appended to `recorder`'s ring as `port` traffic on fabric node `node`
/// (0 for the classic two-party link). When the recorder is disabled this
/// returns `inner` unchanged — no decorator hop, same pointer (the
/// cheap-enough-to-leave-on contract from obs/flight_recorder.hpp).
[[nodiscard]] ChannelPtr record_channel(ChannelPtr inner,
                                        obs::FlightRecorder& recorder,
                                        obs::LinkPort port, u32 node = 0);

/// Wraps all three ports of one side's link with record_channel.
[[nodiscard]] CosimLink record_link(CosimLink link,
                                    obs::FlightRecorder& recorder,
                                    u32 node = 0);

}  // namespace vhp::net
