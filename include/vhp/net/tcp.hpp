// TCP transport over loopback: the paper's actual board<->host medium.
//
// Frames are u32 little-endian length + body. TCP_NODELAY is set on every
// socket — the CLOCK_PORT exchange is a ping-pong of tiny packets and
// Nagle's algorithm would serialize it against delayed ACKs.
#pragma once

#include <array>

#include "vhp/net/channel.hpp"

namespace vhp::net {

/// Server side: binds three ephemeral loopback ports (DATA, INT, CLOCK),
/// publishes their numbers, then accepts exactly one peer per port.
class TcpLinkListener {
 public:
  /// Binds and listens; throws std::system_error on resource exhaustion
  /// (programming/environment error, not a protocol condition).
  TcpLinkListener();
  ~TcpLinkListener();

  TcpLinkListener(const TcpLinkListener&) = delete;
  TcpLinkListener& operator=(const TcpLinkListener&) = delete;

  /// Port numbers in DATA, INT, CLOCK order.
  [[nodiscard]] std::array<u16, 3> ports() const { return ports_; }

  /// Blocks until all three peers connected; returns the HW-side link.
  [[nodiscard]] Result<CosimLink> accept_link();

 private:
  std::array<int, 3> listen_fds_{-1, -1, -1};
  std::array<u16, 3> ports_{};
};

/// Client (board) side: connects to the three ports on 127.0.0.1.
[[nodiscard]] Result<CosimLink> connect_tcp_link(std::array<u16, 3> ports);

/// Single-port variant: binds one ephemeral loopback port and accepts any
/// number of peers over its lifetime — the reconnect path of the fault
/// recovery layer re-accepts on the same port after a transport loss.
class TcpListener {
 public:
  /// Binds and listens; throws std::system_error on resource exhaustion.
  TcpListener();
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] u16 port() const { return port_; }

  /// Accepts the next peer, waiting up to `timeout` (forever if nullopt);
  /// kDeadlineExceeded when none arrived in time.
  [[nodiscard]] Result<ChannelPtr> accept(
      std::optional<std::chrono::milliseconds> timeout = std::nullopt);

 private:
  int listen_fd_ = -1;
  u16 port_ = 0;
};

/// Connects one channel to a loopback port (a TcpListener's, usually).
[[nodiscard]] Result<ChannelPtr> connect_tcp_channel(u16 port);

}  // namespace vhp::net
