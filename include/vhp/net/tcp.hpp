// TCP transport over loopback: the paper's actual board<->host medium.
//
// Frames are u32 little-endian length + body. TCP_NODELAY is set on every
// socket — the CLOCK_PORT exchange is a ping-pong of tiny packets and
// Nagle's algorithm would serialize it against delayed ACKs.
#pragma once

#include <array>

#include "vhp/net/channel.hpp"

namespace vhp::net {

/// Server side: binds three ephemeral loopback ports (DATA, INT, CLOCK),
/// publishes their numbers, then accepts exactly one peer per port.
class TcpLinkListener {
 public:
  /// Binds and listens; throws std::system_error on resource exhaustion
  /// (programming/environment error, not a protocol condition).
  TcpLinkListener();
  ~TcpLinkListener();

  TcpLinkListener(const TcpLinkListener&) = delete;
  TcpLinkListener& operator=(const TcpLinkListener&) = delete;

  /// Port numbers in DATA, INT, CLOCK order.
  [[nodiscard]] std::array<u16, 3> ports() const { return ports_; }

  /// Blocks until all three peers connected; returns the HW-side link.
  [[nodiscard]] Result<CosimLink> accept_link();

 private:
  std::array<int, 3> listen_fds_{-1, -1, -1};
  std::array<u16, 3> ports_{};
};

/// Client (board) side: connects to the three ports on 127.0.0.1.
[[nodiscard]] Result<CosimLink> connect_tcp_link(std::array<u16, 3> ports);

}  // namespace vhp::net
