// Transport abstraction for one co-simulation channel.
//
// The protocol logic (kernel loop, board driver) is written against this
// interface; the concrete transport is either real TCP over loopback (the
// paper's setup, used by the benchmarks so socket round trips are really
// paid) or an in-process queue (used by unit tests for determinism).
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "vhp/common/bytes.hpp"
#include "vhp/common/status.hpp"
#include "vhp/net/message.hpp"

namespace vhp::net {

/// A bidirectional, framed, ordered, reliable byte-message channel.
/// Thread-safety contract: one sender thread and one receiver thread per
/// direction may operate concurrently (the co-simulation uses exactly that).
class Channel {
 public:
  virtual ~Channel() = default;

  /// Sends one frame. Blocking; returns kAborted if the peer closed.
  virtual Status send(std::span<const u8> frame) = 0;

  /// Receives one frame, waiting up to `timeout` (forever if nullopt).
  /// Returns kDeadlineExceeded on timeout, kAborted if the peer closed.
  virtual Result<Bytes> recv(
      std::optional<std::chrono::milliseconds> timeout = std::nullopt) = 0;

  /// Non-blocking receive; ok()+nullopt when no frame is pending.
  virtual Result<std::optional<Bytes>> try_recv() = 0;

  /// Closes this endpoint; pending and future receives on the peer fail
  /// with kAborted once drained.
  virtual void close() = 0;

  /// Sends many frames as one transport operation where the transport
  /// supports it (writev on TCP, one doorbell on shm). Frame boundaries
  /// are preserved; the byte stream is identical to N individual send()
  /// calls. Default: loop over send().
  virtual Status send_many(std::span<const Bytes> frames) {
    for (const auto& f : frames) {
      if (auto s = send(f); !s.ok()) return s;
    }
    return Status::Ok();
  }

  /// Pushes any frames the channel (or a batching decorator) is holding
  /// toward the peer. No-op for unbuffered transports. Decorators forward.
  virtual Status flush() { return Status::Ok(); }

  /// A pollable fd that becomes readable when a frame may be pending, or
  /// -1 when the transport has none (callers must then poll try_recv()).
  /// Calling this may arm a doorbell: in-process queues lazily create an
  /// eventfd the first time an event loop asks. Readiness is advisory —
  /// level-triggered and possibly stale; always confirm with try_recv().
  virtual int readable_fd() { return -1; }
};

using ChannelPtr = std::unique_ptr<Channel>;

/// Typed convenience wrappers: Message <-> frame.
Status send_msg(Channel& ch, const Message& msg);
Result<Message> recv_msg(
    Channel& ch,
    std::optional<std::chrono::milliseconds> timeout = std::nullopt);
/// ok()+nullopt when no message is pending.
Result<std::optional<Message>> try_recv_msg(Channel& ch);

/// The three-port link of the paper (Section 5.1).
struct CosimLink {
  ChannelPtr data;   // DATA_PORT
  ChannelPtr intr;   // INT_PORT
  ChannelPtr clock;  // CLOCK_PORT

  void close_all() {
    if (data) data->close();
    if (intr) intr->close();
    if (clock) clock->close();
  }
};

/// Both ends of a link, for in-process wiring.
struct LinkPair {
  CosimLink hw;     // held by the simulation kernel side
  CosimLink board;  // held by the (virtual) board side
};

}  // namespace vhp::net
