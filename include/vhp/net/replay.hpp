// Replay transport: plays a flight recording back into a lone side.
//
// A recording captured on one side of the link (obs::FlightRecorder via
// net::record_link) contains, in one global sequence, every frame that side
// sent (tx) and received (rx). ReplaySession turns it into a CosimLink whose
// three channels impersonate the missing peer: the live side's sends are
// checked frame-by-frame against the recorded tx stream (first mismatch =
// divergence, reported with a field-level diff), and its receives are served
// the recorded rx frames.
//
// Delivery is gated so the lone run reproduces the original timing:
//   * causality — an rx record becomes visible only once every tx record
//     with a smaller sequence number has been re-sent by the live side;
//   * virtual time — with a time source wired (kernel cycle for an "hw"
//     recording, board SW tick for a "board" one), an rx record is held
//     until the live side's virtual clock reaches the recorded stamp, so a
//     polling loop picks it up on exactly the original poll.
// Under those two gates a deterministic side re-produces the identical
// virtual-time trajectory it had against the real peer (ISSUE 2 acceptance).
#pragma once

#include <memory>
#include <vector>

#include "vhp/net/channel.hpp"
#include "vhp/obs/recording.hpp"
#include "vhp/obs/timeline.hpp"

namespace vhp::net {

/// Field-level frame diff for divergence reports: decodes both payloads as
/// protocol Messages and names the first differing field ("ClockTick.n_ticks:
/// 100 vs 60"). Returns "" when it cannot decode (truncated payloads) or
/// finds no field difference — the byte-level report takes over.
[[nodiscard]] std::string message_field_diff(const obs::FrameRecord& expected,
                                             const obs::FrameRecord& actual);

/// Per-node synchronization summary of a recording's CLOCK traffic: grant
/// count and size distribution (min/mean/max cycles per CLOCK_TICK) and how
/// many TIME_ACKs advertised a lookahead (wire v2) — the quickest way to see
/// whether, and how far, an adaptive run actually stretched its quanta.
/// Lives here rather than in vhp::obs because decoding frames needs the
/// protocol codec. Empty string when the recording holds no CLOCK frames.
[[nodiscard]] std::string grant_stats_text(const obs::Recording& recording);

/// Offline timeline extraction: reconstructs per-round SpanRecords from a
/// master-side ("hw") recording's CLOCK traffic, optionally joined with
/// board-side recordings for the compute/frozen phases. Rounds are grouped
/// by ClockTick::sim_cycle — a barrier ticks every due node at one master
/// cycle — so v1/v2 recordings (no wire round id) analyze too; when ticks
/// carry a wire-v3 round it is used verbatim. Wall stamps come from
/// FrameRecord::wall_ns: the fabric re-bases every recorder onto the master
/// epoch, so hw- and board-side spans share one clock. Feeds the same
/// analyzer as the live timeline (obs::analyze_spans) — this is what
/// `vhptrace timeline`/`critical` run on a .vhprec set. Lives here because
/// extraction needs the protocol codec.
[[nodiscard]] std::vector<obs::SpanRecord> timeline_from_recordings(
    const obs::Recording& hw,
    const std::vector<obs::Recording>& boards = {});

struct ReplayOptions {
  /// The live side's virtual clock (CosimKernel::cycle or the board's tick
  /// count). Unset disables the virtual-time gate; causality still holds.
  std::function<u64()> time_source;
  /// Diff provider for divergence reports.
  obs::FrameDiffFn diff = &message_field_diff;
  /// Fabric recordings interleave N nodes' links in one global sequence;
  /// open() keeps only this node's frames, so one recording replays any
  /// single node's link. 0 matches classic two-party recordings unchanged.
  u32 node = 0;
};

/// One replay of one recording. Keep the session alive for as long as the
/// link it made is in use; query it afterwards for the verdict.
class ReplaySession {
 public:
  /// Fails (kInvalidArgument) if any rx frame in the recording is truncated
  /// — a clipped payload cannot be re-delivered. Record with
  /// FlightRecorderConfig::max_payload_bytes large enough to hold frames
  /// whole (SessionConfigBuilder::record() does).
  static Result<std::unique_ptr<ReplaySession>> open(
      obs::Recording recording, ReplayOptions options = {});

  /// The link to hand to the lone CosimKernel / Board in place of a real
  /// transport. Callable once.
  [[nodiscard]] CosimLink make_link();

  /// Late wiring of ReplayOptions::time_source, for when the virtual clock
  /// belongs to an object constructed *from* make_link()'s result (the lone
  /// CosimKernel). Call before the first run_cycles.
  void set_time_source(std::function<u64()> source);

  /// First mismatch between the live side's sends and the recorded tx
  /// stream, if any.
  [[nodiscard]] std::optional<obs::Divergence> divergence() const;
  /// Frames consumed so far (tx matched + rx delivered) / total recorded.
  [[nodiscard]] u64 consumed() const;
  [[nodiscard]] u64 total() const;
  /// True when every recorded frame was matched or delivered.
  [[nodiscard]] bool complete() const;

  ~ReplaySession();

  /// Shared by the three channels of make_link(); opaque outside replay.cpp.
  struct State;

 private:
  ReplaySession();
  std::shared_ptr<State> state_;
};

}  // namespace vhp::net
