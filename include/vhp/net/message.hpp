// Wire messages of the co-simulation protocol (DESIGN.md §6).
//
// The paper routes three kinds of traffic over three TCP/IP ports:
//   DATA_PORT  — device payload (driver reads/writes),
//   INT_PORT   — interrupt notifications from the simulated HW to the board,
//   CLOCK_PORT — the timing packets that implement the virtual tick.
// Each message is a tagged, length-framed, little-endian record.
#pragma once

#include <optional>
#include <span>
#include <variant>

#include "vhp/common/bytes.hpp"
#include "vhp/common/status.hpp"
#include "vhp/common/types.hpp"

namespace vhp::net {

enum class MsgType : u8 {
  kDataWrite = 1,    // SW -> HW: driver write to device register/FIFO
  kDataReadReq = 2,  // SW -> HW: driver read request
  kDataReadResp = 3, // HW -> SW: read response
  kIntRaise = 4,     // HW -> SW: interrupt line asserted
  kClockTick = 5,    // HW -> SW: advance T_sync worth of ticks (virtual tick)
  kTimeAck = 6,      // SW -> HW: board frozen again, reports its tick count
  kShutdown = 7,     // HW -> SW: end of co-simulation
};

[[nodiscard]] std::string_view to_string(MsgType t);

/// Driver write: `data` bytes land at device address `address`.
struct DataWrite {
  u32 address = 0;
  Bytes data;
  bool operator==(const DataWrite&) const = default;
};

/// Driver read request for `nbytes` bytes at `address`.
struct DataReadReq {
  u32 address = 0;
  u32 nbytes = 0;
  bool operator==(const DataReadReq&) const = default;
};

/// Response to a DataReadReq.
struct DataReadResp {
  u32 address = 0;
  Bytes data;
  bool operator==(const DataReadResp&) const = default;
};

/// HW interrupt: the simulated device asserted interrupt vector `vector`.
struct IntRaise {
  u32 vector = 0;
  bool operator==(const IntRaise&) const = default;
};

/// Virtual tick: the kernel reached simulated cycle `sim_cycle` and grants
/// the board `n_ticks` software ticks of execution (paper §4.2, T_sync).
///
/// Wire v3 (timeline tracing, DESIGN.md §7.2): the tick optionally carries
/// the master's barrier *round* id so one synchronization exchange can be
/// followed causally across nodes. Length-versioned like the lookahead field
/// on TimeAck: a tick without a round is byte-identical to v1.
struct ClockTick {
  u64 sim_cycle = 0;
  u32 n_ticks = 0;
  std::optional<u64> round = std::nullopt;
  bool operator==(const ClockTick&) const = default;
};

/// TimeAck::lookahead value for "idle until data arrives": the board has no
/// future event of its own scheduled.
inline constexpr u64 kLookaheadUnbounded = ~u64{0};

/// On-wire placeholder for "no lookahead advertised" in a v3 TimeAck. A v3
/// ack always carries both trailing u64 fields (lookahead-or-sentinel, then
/// round) so the 24-byte layout stays unambiguous; this sentinel marks the
/// lookahead slot empty. Never appears in a decoded TimeAck::lookahead —
/// the codec maps it back to nullopt.
inline constexpr u64 kNoLookahead = ~u64{0} - 1;

/// Board answer: it consumed its tick budget and froze at `board_tick`.
///
/// Wire v2 (adaptive synchronization, DESIGN.md §10): the ack optionally
/// carries the board's *lookahead* — the earliest future master sim-cycle at
/// which it can next interact (next RTOS timer expiry, or kLookaheadUnbounded
/// when idle until data arrives). Encoding is versioned by length, like the
/// VHPREC02 recording format: a v1 ack (no lookahead) is byte-identical to
/// the old format, and a v1 decoder never sees the extra field unless the
/// sender advertises — so mixed-version peers interoperate as long as
/// adaptive mode is only enabled against v2 boards.
///
/// Wire v3 (timeline tracing): when the board echoes the round id it saw on
/// the granting CLOCK_TICK, the ack payload grows to 24 bytes — board_tick,
/// then lookahead (or kNoLookahead when none is advertised), then round.
/// Versioning stays by length: 8 bytes = v1, 16 = v2, 24 = v3; a board that
/// never receives a round keeps emitting v1/v2 acks, so mixed-version
/// parties interoperate bit-exactly.
struct TimeAck {
  u64 board_tick = 0;
  std::optional<u64> lookahead = std::nullopt;
  std::optional<u64> round = std::nullopt;
  bool operator==(const TimeAck&) const = default;
};

struct Shutdown {
  bool operator==(const Shutdown&) const = default;
};

using Message = std::variant<DataWrite, DataReadReq, DataReadResp, IntRaise,
                             ClockTick, TimeAck, Shutdown>;

[[nodiscard]] MsgType type_of(const Message& msg);

/// Serializes `msg` to a frame body (type byte + payload). The transport adds
/// the u32 length prefix.
[[nodiscard]] Bytes encode(const Message& msg);

/// Parses a frame body produced by encode().
[[nodiscard]] Result<Message> decode(std::span<const u8> frame);

}  // namespace vhp::net
