// In-process channel: a pair of bounded FIFO queues guarded by a mutex and
// condition variables. Deterministic and syscall-free; the unit-test
// transport. Implements the same Channel contract as the TCP transport.
#pragma once

#include "vhp/net/channel.hpp"

namespace vhp::net {

/// Creates a connected pair of in-process channel endpoints.
/// `capacity` bounds each direction's queue; send blocks when full, which
/// models TCP back-pressure.
std::pair<ChannelPtr, ChannelPtr> make_inproc_channel_pair(
    std::size_t capacity = 1024);

/// Creates a full 3-channel co-simulation link in process.
LinkPair make_inproc_link_pair(std::size_t capacity = 1024);

}  // namespace vhp::net
