// N-party generalization of the paper's virtual tick (Section 5.3).
//
// The two-party protocol grants the board T_sync cycles with one CLOCK_TICK
// and blocks for the TIME_ACK. With N boards the simulated-time master runs
// the same exchange as a conservative barrier: scatter one CLOCK_TICK per
// due node, gather the N TIME_ACKs, and advance simulated time only once
// every party has checked in. No node ever observes simulated time beyond
// its last grant, so the composition is deadlock-free and deterministic for
// deterministic parties — the same argument as the two-party proof, applied
// per link.
//
// Nodes may sync at different rates (per-node T_sync override): a barrier at
// cycle C ticks exactly the subset due at C, granting each the cycles
// elapsed since its previous grant. The master never runs past the earliest
// pending due-cycle, which keeps the conservative bound tight per node
// instead of forcing the fastest cadence on everyone.
//
// Adaptive mode (cosim::SyncPolicy::adaptive, DESIGN.md §10) varies each
// node's quantum with the lookahead its TIME_ACKs advertise: after the
// gather at cycle C, a node whose ack promises "nothing before cycle L"
// is next due at C + max(min_quantum, min(L - C, max_quantum)). Nodes
// answering with v1 acks (no lookahead) keep their fixed cadence, so
// adaptive and fixed parties mix freely in one barrier.
//
// The coordinator owns no transport: it is handed one CLOCK channel per node
// (the fabric's, or a unit test's raw inproc pairs — the barrier logic is
// fiber-free and runs under TSan).
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "vhp/common/log.hpp"
#include "vhp/common/status.hpp"
#include "vhp/cosim/sync_policy.hpp"
#include "vhp/net/channel.hpp"
#include "vhp/obs/hub.hpp"

namespace vhp::fabric {

/// Deprecated shim: the pre-SyncPolicy knob set, kept so existing callers
/// compile unchanged. New code should build a cosim::SyncPolicy (which also
/// unlocks adaptive mode) and use the policy constructor below.
struct SyncConfig {
  /// Default synchronization quantum, in HW clock cycles.
  u64 t_sync = 1000;
  /// Per-node overrides, indexed by node id; 0 (or a missing entry) means
  /// the default. A slow peripheral board can sync coarsely while a
  /// latency-critical one stays fine-grained.
  std::vector<u64> t_sync_overrides;
  /// Wall-clock bound on one gather. A board that never acks trips this and
  /// the barrier reports *which* nodes were still pending instead of
  /// hanging the whole fabric. Zero disables the watchdog.
  std::chrono::milliseconds watchdog{10000};
  /// Graceful degradation: a node that trips the watchdog this many
  /// consecutive times is *evicted* — dropped from the barrier so the
  /// survivors keep simulating — instead of failing the whole fabric.
  /// 0 keeps the legacy fail-fast behavior. Requires a nonzero watchdog.
  u32 evict_after_misses = 0;

  /// Quantum of `node` after overrides.
  [[nodiscard]] u64 quantum(std::size_t node) const {
    if (node < t_sync_overrides.size() && t_sync_overrides[node] != 0) {
      return t_sync_overrides[node];
    }
    return t_sync;
  }

  /// Rejects a zero default quantum or an all-zero override set to nothing.
  [[nodiscard]] Status validate(std::size_t n_nodes) const;

  /// The equivalent unified policy (fixed mode — SyncConfig predates the
  /// adaptive machinery and cannot express it).
  [[nodiscard]] cosim::SyncPolicy to_policy() const;
};

class SyncCoordinator {
 public:
  /// `clocks[i]` is the master-side CLOCK channel of node i (borrowed; the
  /// caller keeps the links alive). `names[i]` labels node i in errors and
  /// logs — pass {} for "node0", "node1", ... `hub` may be nullptr
  /// (standalone unit tests); metrics then go to a private registry.
  ///
  /// With `policy.adaptive()`, each gathered TIME_ACK's lookahead re-bases
  /// that node's next due-cycle to `cycle + policy.grant(...)` — a sleeping
  /// node gets a long grant (up to max_quantum), a busy one keeps syncing
  /// at min_quantum — while the conservative barrier argument is untouched:
  /// a node still never observes simulated time beyond its grant.
  SyncCoordinator(cosim::SyncPolicy policy, std::vector<net::Channel*> clocks,
                  std::vector<std::string> names = {},
                  obs::Hub* hub = nullptr);

  /// Deprecated shim: accepts the legacy knob set (fixed mode only).
  SyncCoordinator(const SyncConfig& config, std::vector<net::Channel*> clocks,
                  std::vector<std::string> names = {},
                  obs::Hub* hub = nullptr);

  SyncCoordinator(const SyncCoordinator&) = delete;
  SyncCoordinator& operator=(const SyncCoordinator&) = delete;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// Deprecated shim: legacy view of the policy (lossy — adaptive knobs are
  /// not representable). Prefer policy().
  [[nodiscard]] const SyncConfig& config() const { return config_; }
  [[nodiscard]] const cosim::SyncPolicy& policy() const { return policy_; }

  /// Gathers every node's initial "frozen" TIME_ACK (the board reports it
  /// on boot). Must complete before the first barrier; the watchdog applies
  /// and names the nodes that never reported.
  Status handshake();

  /// Earliest cycle at which any node's grant expires. The master must not
  /// simulate past it before running the barrier there.
  [[nodiscard]] u64 next_due() const;

  /// True when at least one node's grant expires at `cycle`.
  [[nodiscard]] bool due(u64 cycle) const { return next_due() == cycle; }

  /// The barrier: scatters CLOCK_TICK(cycle, elapsed) to every node due at
  /// `cycle`, then gathers their TIME_ACKs. `service` is invoked while
  /// waiting (the fabric drains all DATA ports there, preserving the
  /// two-party deadlock-freedom argument); pass nullptr for none. On
  /// watchdog expiry returns kDeadlineExceeded naming the pending nodes.
  Status run_barrier(u64 cycle, const std::function<Status()>& service = {});

  /// Sends SHUTDOWN on every live node's CLOCK channel (best effort).
  void shutdown();

  /// Extra fds whose readiness should wake a parked gather (the fabric
  /// passes each node's DATA doorbell, so a mid-quantum device read is
  /// serviced promptly even after the spin phase gave way to blocking).
  /// Borrowed; the caller keeps them open while barriers run.
  void set_wake_fds(std::vector<int> fds) { wake_fds_ = std::move(fds); }

  /// Eviction state (see SyncConfig::evict_after_misses).
  [[nodiscard]] bool alive(std::size_t node) const {
    return node < nodes_.size() && nodes_[node].alive;
  }
  [[nodiscard]] std::size_t alive_count() const;

  /// Re-admits an evicted node at the master's current `cycle`: waits (under
  /// the watchdog) for a fresh TIME_ACK on its CLOCK channel — the returning
  /// party announces itself frozen, exactly like the boot handshake — then
  /// schedules its next grant one quantum out. kFailedPrecondition if the
  /// node is alive.
  Status rejoin(std::size_t node, u64 cycle);

  /// Barrier rounds stamped on the wire so far (wire v3). 0 unless the
  /// hub's timeline is enabled — round stamping grows the CLOCK/TIME_ACK
  /// frames, so it is gated on the timeline switch to keep default runs
  /// byte-exact. Monotone across eviction and rejoin.
  [[nodiscard]] u64 rounds() const { return round_; }

  /// Barriers completed / ticks scattered / acks gathered / evictions.
  [[nodiscard]] u64 barriers() const { return barriers_.value(); }
  [[nodiscard]] u64 ticks_sent() const { return ticks_sent_.value(); }
  [[nodiscard]] u64 acks_received() const { return acks_received_.value(); }
  [[nodiscard]] u64 evictions() const { return evictions_.value(); }
  [[nodiscard]] u64 rejoins() const { return rejoins_.value(); }
  /// Acks that carried a lookahead (wire v2), and the subset advertising
  /// "idle until data arrives" (kLookaheadUnbounded).
  [[nodiscard]] u64 lookahead_acks() const { return lookahead_acks_.value(); }
  [[nodiscard]] u64 lookahead_unbounded() const {
    return lookahead_unbounded_.value();
  }

  /// Introspection (tests, vhptrace): node i's next due-cycle and the
  /// lookahead from its latest TIME_ACK (nullopt: none advertised yet).
  [[nodiscard]] u64 node_due(std::size_t node) const {
    return nodes_[node].next_due;
  }
  [[nodiscard]] std::optional<u64> node_lookahead(std::size_t node) const {
    return nodes_[node].lookahead;
  }

 private:
  struct Node {
    net::Channel* clock;
    std::string name;
    u64 quantum;           // fixed quantum (policy.node_quantum)
    u64 last_granted = 0;  // cycle of the previous grant
    u64 next_due;          // next barrier this node takes part in
    std::optional<u64> lookahead;  // from the latest TIME_ACK
    obs::Counter& acks;            // fabric.<name>.acks
    obs::LatencyHistogram& grants; // fabric.<name>.grant_cycles
    bool alive = true;     // false once evicted
    u32 missed = 0;        // consecutive watchdog expiries while pending
    // Timeline stamps of the current round: tick send and ack arrival,
    // backing the per-node kNodeWait span. 0 when the timeline is off.
    u64 tick_sent_ns = 0;
    u64 ack_recv_ns = 0;
  };

  /// Marks the node dead and reports it (fabric.node_evicted).
  void evict_node(std::size_t index, std::string_view why);

  /// Counts a gathered ack's lookahead (fabric.lookahead_*).
  void note_lookahead(const std::optional<u64>& lookahead);

  /// Waits for one TIME_ACK from each node in `pending` (indices into
  /// nodes_), interleaving `service`, under the watchdog.
  Status gather(std::vector<std::size_t> pending,
                const std::function<Status()>& service);

  cosim::SyncPolicy policy_;
  SyncConfig config_;  // legacy mirror of policy_, backs config()
  Status config_status_;
  Logger log_{"fabric"};

  std::unique_ptr<obs::Hub> owned_hub_;
  obs::Hub* hub_;
  obs::Counter& barriers_;
  obs::Counter& ticks_sent_;
  obs::Counter& acks_received_;
  obs::Counter& evictions_;
  obs::Counter& rejoins_;
  obs::Counter& lookahead_acks_;
  obs::Counter& lookahead_unbounded_;
  obs::LatencyHistogram& barrier_wait_ns_;
  obs::Timeline& timeline_;
  obs::SpanSink& spans_;  // timeline ring "fabric" (coordinator-side spans)

  std::vector<Node> nodes_;
  std::vector<int> wake_fds_;  // see set_wake_fds
  u64 round_ = 0;  // wire-v3 round id; monotone across rejoin
  bool handshaken_ = false;
};

}  // namespace vhp::fabric
