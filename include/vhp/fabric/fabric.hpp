// vhp::fabric — N-node co-simulation in one process (ISSUE 4 tentpole).
//
// One simulated-time-master HW kernel orchestrates N virtual boards, each on
// its own host thread behind its own three-port link (inproc or TCP over
// loopback). The paper's two-party virtual tick generalizes to an N-party
// conservative barrier (SyncCoordinator): every node is granted quanta of
// simulated time and the master advances only once all due nodes have
// checked in, so adding boards never weakens the timing guarantee.
//
// Per-node isolation:
//   * each node has its own DriverRegistry — identical device addresses on
//     different boards address different devices;
//   * each node has its own obs::Hub ("node0", ...) whose metrics merge
//     into one document via obs::merged_metrics_json;
//   * the master-side flight recorder stamps every frame with its node id,
//     so one fabric recording diffs/replays per node (net::ReplayOptions).
//
// Thread/fiber ownership (see DESIGN.md §8): the master thread owns the
// sim::Kernel and all HW-side link endpoints; each board's rtos::Kernel and
// its fiber group live entirely on that board's host thread. No fiber is
// ever touched from two host threads.
//
// A node may be declared `external`: the fabric creates and decorates its
// link but spawns no board, handing the board-side endpoints to the caller.
// That slot can host any party speaking the protocol — a unit test driving
// raw channels, a model behind an FMI-style bridge — and is how the barrier
// logic is exercised fiber-free under TSan.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "vhp/board/board.hpp"
#include "vhp/cosim/driver_port.hpp"
#include "vhp/fabric/sync_coordinator.hpp"
#include "vhp/fault/plan.hpp"
#include "vhp/fault/reliable.hpp"
#include "vhp/net/batching.hpp"
#include "vhp/net/channel.hpp"
#include "vhp/obs/hub.hpp"
#include "vhp/sim/kernel.hpp"
#include "vhp/sim/signal.hpp"
#include "vhp/svc/event_loop.hpp"

namespace vhp::fabric {

enum class Transport {
  kInProc,
  kTcp,
  /// Shared-memory SPSC rings (net/shm_ring.hpp): syscall-free data path
  /// with eventfd doorbells (DESIGN.md §14).
  kShm,
};

struct FabricNodeConfig {
  /// Node identity: log tag, metrics namespace ("<name>." prefix in the
  /// merged document), recording label. Empty gets "node<i>".
  std::string name;
  board::BoardConfig board{};
  /// Per-node sync quantum; 0 uses FabricConfig::t_sync.
  u64 t_sync = 0;
  /// External party: the fabric creates the link and the barrier slot but
  /// spawns no board; take_board_link() hands out the board-side endpoints.
  bool external = false;
};

struct FabricConfig {
  /// Default synchronization quantum in HW clock cycles (the paper's
  /// T_sync), overridable per node. Deprecated shim: honored only while
  /// `sync` is unset.
  u64 t_sync = 1000;
  /// The unified synchronization policy (ISSUE 6). When set it wins
  /// wholesale over the legacy t_sync/watchdog/evict_after_misses fields
  /// (per-node FabricNodeConfig::t_sync overrides still apply) and may
  /// enable adaptive lookahead mode — every non-external board is then
  /// configured to advertise its lookahead (wire v2 acks).
  std::optional<cosim::SyncPolicy> sync;
  sim::SimTime clock_period = 2;
  /// Poll each node's DATA port every this many cycles (as CosimConfig).
  u64 data_poll_interval = 1;
  /// Evaluation lanes of the deterministic parallel master kernel
  /// (including the calling thread); 0 = serial. Bit-identical results
  /// either way — see sim::Kernel::set_parallel.
  u64 parallel_workers = 0;
  Transport transport = Transport::kInProc;
  /// Barrier straggler watchdog (SyncConfig::watchdog). Deprecated shim:
  /// honored only while `sync` is unset.
  std::chrono::milliseconds watchdog{10000};
  /// Graceful degradation (SyncConfig::evict_after_misses): a node missing
  /// this many consecutive watchdog intervals is evicted and the survivors
  /// keep simulating. 0 keeps fail-fast. Deprecated shim: honored only
  /// while `sync` is unset.
  u32 evict_after_misses = 0;
  /// Deterministic fault injection on every node's link (hw side); an empty
  /// plan is zero-hop. A plan that can lose or mutate frames requires
  /// recovery.enabled.
  fault::FaultPlan fault_plan{};
  /// Link-level recovery (sequence numbers, ack/retransmit) on both sides
  /// of every link.
  fault::RecoveryConfig recovery{};
  /// Per-quantum frame batching on every link's DATA/INT channels
  /// (net/batching.hpp, DESIGN.md §14): frames coalesce into one vectored
  /// send flushed at the barrier boundary. Incompatible with recovery
  /// (validate() enforces it). Recordings stay bit-identical.
  bool batch_frames = false;
  net::BatchingConfig batching{};
  /// Event-loop hosting (DESIGN.md §14): all non-external boards are
  /// pumped cooperatively by ONE svc::EventLoop thread instead of one
  /// parked BoardHost thread each — transport doorbells wake exactly the
  /// board that has input. Virtual-time behavior is identical; only the
  /// host-thread economics change.
  bool event_loop = false;
  /// Send SHUTDOWN to every node on finish().
  bool shutdown_on_finish = true;
  /// Applied to the master hub and every node hub alike.
  obs::ObsConfig obs{};
  std::vector<FabricNodeConfig> nodes;

  /// The policy in effect: `sync` when set, else the legacy fields
  /// repackaged; per-node t_sync overrides apply either way.
  [[nodiscard]] cosim::SyncPolicy resolved_sync() const;

  /// CosimConfig-style rules, per node: nonzero divisors, budgeted boards
  /// (a free-running board cannot take part in a barrier), at least one
  /// node.
  [[nodiscard]] Status validate() const;
};

/// Fluent construction of a validated FabricConfig:
///
///   auto cfg = FabricConfigBuilder{}
///                  .tcp()
///                  .t_sync(1000)
///                  .add_node("port0")
///                  .add_node("port1", /*t_sync=*/250)
///                  .build_or_throw();
class FabricConfigBuilder {
 public:
  FabricConfigBuilder& transport(Transport kind) {
    config_.transport = kind;
    return *this;
  }
  FabricConfigBuilder& tcp() { return transport(Transport::kTcp); }
  FabricConfigBuilder& inproc() { return transport(Transport::kInProc); }
  FabricConfigBuilder& shm() { return transport(Transport::kShm); }

  /// Per-quantum frame batching on every link (FabricConfig::batch_frames).
  FabricConfigBuilder& batching(bool on = true) {
    config_.batch_frames = on;
    return *this;
  }
  /// One event-loop thread pumps all boards (FabricConfig::event_loop).
  FabricConfigBuilder& event_loop(bool on = true) {
    config_.event_loop = on;
    return *this;
  }

  FabricConfigBuilder& t_sync(u64 cycles) {
    config_.t_sync = cycles;
    return *this;
  }
  /// The unified knob-set (FabricConfig::sync); wins over t_sync()/
  /// watchdog()/evict_after() wholesale.
  FabricConfigBuilder& sync(cosim::SyncPolicy policy) {
    config_.sync = std::move(policy);
    return *this;
  }
  FabricConfigBuilder& clock_period(sim::SimTime period) {
    config_.clock_period = period;
    return *this;
  }
  FabricConfigBuilder& data_poll_interval(u64 cycles) {
    config_.data_poll_interval = cycles;
    return *this;
  }
  /// Parallel master kernel with `workers` evaluation lanes (0 = serial);
  /// bit-identical results either way.
  FabricConfigBuilder& parallel(u64 workers) {
    config_.parallel_workers = workers;
    return *this;
  }
  FabricConfigBuilder& watchdog(std::chrono::milliseconds bound) {
    config_.watchdog = bound;
    return *this;
  }
  FabricConfigBuilder& evict_after(u32 misses) {
    config_.evict_after_misses = misses;
    return *this;
  }
  FabricConfigBuilder& fault_plan(fault::FaultPlan plan) {
    config_.fault_plan = std::move(plan);
    return *this;
  }
  FabricConfigBuilder& recovery(fault::RecoveryConfig recovery_config) {
    config_.recovery = recovery_config;
    return *this;
  }
  FabricConfigBuilder& recover(bool on = true) {
    config_.recovery.enabled = on;
    return *this;
  }
  FabricConfigBuilder& observability(bool on = true) {
    config_.obs.enabled = on;
    return *this;
  }
  /// Flight recorder on every link, payloads kept whole (replayable).
  FabricConfigBuilder& record(bool on = true) {
    config_.obs.record.enabled = on;
    if (on) config_.obs.record.max_payload_bytes = 1u << 16;
    return *this;
  }
  /// Arms the cross-node timeline (ObsConfig::timeline): per-round span
  /// rings on both sides of every link plus wire-v3 round stamping on
  /// CLOCK_TICK/TIME_ACK. Off by default — armed runs grow those frames,
  /// so recordings are no longer byte-exact against unarmed ones.
  FabricConfigBuilder& timeline(bool on = true) {
    config_.obs.timeline.enabled = on;
    return *this;
  }

  /// Appends a board node; `t_sync` 0 inherits the fabric default.
  FabricConfigBuilder& add_node(std::string name = {}, u64 t_sync = 0);
  /// Appends a board node with full board configuration.
  FabricConfigBuilder& add_node(FabricNodeConfig node);
  /// Appends an external (board-less) node — see FabricNodeConfig::external.
  FabricConfigBuilder& add_external_node(std::string name = {},
                                         u64 t_sync = 0);
  /// Tweaks the most recently added node's board config in place.
  [[nodiscard]] board::BoardConfig& last_board();

  [[nodiscard]] Result<FabricConfig> build() const;
  [[nodiscard]] FabricConfig build_or_throw() const;

 private:
  FabricConfig config_{};
};

class Fabric {
 public:
  /// Throws std::invalid_argument if `config.validate()` fails.
  explicit Fabric(FabricConfig config);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const FabricConfig& config() const { return config_; }

  /// The master simulation. Build HDL modules against kernel() and the
  /// per-node registry(i) before start_boards()/run_cycles(). As with
  /// CosimSession, everything built against the kernel must be destroyed
  /// before the Fabric.
  [[nodiscard]] sim::Kernel& kernel() { return kernel_; }
  [[nodiscard]] sim::Clock& clock() { return clock_; }

  /// Node i's device address space (DATA traffic of node i's link consults
  /// only this registry).
  [[nodiscard]] cosim::DriverRegistry& registry(std::size_t node);

  /// Node i's board (non-external nodes only). Configure apps and DSRs
  /// before start_boards().
  [[nodiscard]] board::Board& board(std::size_t node);

  /// Board-side link of an external node; callable once per node. The
  /// caller becomes that node's party: it must answer CLOCK_TICKs with
  /// TIME_ACKs (or be reported by the straggler watchdog).
  [[nodiscard]] net::CosimLink take_board_link(std::size_t node);

  /// The master-side hub (fabric.* barrier metrics, per-link accounting,
  /// the node-stamped flight recorder) and the per-node hubs.
  [[nodiscard]] obs::Hub& obs() { return *hub_; }
  [[nodiscard]] obs::Hub& node_obs(std::size_t node);

  [[nodiscard]] SyncCoordinator& coordinator() { return *coordinator_; }

  /// Eviction state (SyncConfig::evict_after_misses): is node i still in the
  /// barrier, and how many nodes are.
  [[nodiscard]] bool node_alive(std::size_t node) const {
    return coordinator_->alive(node);
  }
  [[nodiscard]] std::size_t alive_nodes() const {
    return coordinator_->alive_count();
  }

  /// Re-admits an evicted node at the current cycle (SyncCoordinator::rejoin
  /// — the returning party must announce itself with a TIME_ACK).
  Status rejoin_node(std::size_t node) {
    return coordinator_->rejoin(node, cycle_);
  }

  /// The compiled fault schedule; nullptr when the plan is unarmed.
  [[nodiscard]] fault::FaultSchedule* fault_schedule() {
    return schedule_.get();
  }

  /// Registers `line` of the master model as node i's interrupt source.
  void watch_interrupt(std::size_t node, sim::BoolSignal& line, u32 vector);

  /// Boots every non-external node's board host thread.
  void start_boards();

  /// Gathers every node's initial TIME_ACK. Implied by the first
  /// run_cycles(); call directly to bound the wait explicitly.
  Status handshake();

  /// Runs `cycles` HW clock cycles: per-node DATA service and interrupt
  /// propagation every cycle, the N-party barrier whenever any node's grant
  /// expires. Fails fast (straggler watchdog, transport error) with the
  /// offending node named in the Status.
  Status run_cycles(u64 cycles);

  [[nodiscard]] u64 cycle() const { return cycle_; }

  /// Sends SHUTDOWN to every node and joins the board threads.
  void finish();

  /// One metrics document spanning the master hub (unprefixed) and every
  /// node hub ("<name>." prefixes) — obs::merged_metrics_json. With the
  /// timeline armed the document carries a top-level "timeline" object:
  /// the critical-path analysis (per-node attribution, slowdown,
  /// reconciliation) over the spans recorded so far.
  [[nodiscard]] std::string metrics_json();
  Status write_metrics_json(const std::string& path);

  /// Merged span rings: the coordinator's spans from the master hub plus
  /// every node hub's board-side spans re-stamped with their fabric node id
  /// (a board records itself as node 0), sorted by start. All hubs share
  /// the master's epoch, so the timestamps compare directly. Empty unless
  /// ObsConfig::timeline is enabled.
  [[nodiscard]] std::vector<obs::SpanRecord> timeline_spans();

  /// node id -> resolved node name, as the analyzer and exporters want it.
  [[nodiscard]] std::map<u32, std::string> node_names() const;

  /// Critical-path analysis over timeline_spans().
  [[nodiscard]] obs::TimelineAnalysis timeline_analysis();

  /// Live telemetry: a TCP/JSON snapshot endpoint on the master hub whose
  /// provider is the merged metrics_json() (timeline fragment included).
  /// Port 0 binds an ephemeral port — read it back with telemetry_port().
  /// Stopped by finish(). Serves `vhptrace top`.
  Status serve_telemetry(u16 port = 0);
  [[nodiscard]] u16 telemetry_port() { return hub_->telemetry_port(); }

  /// Writes the master-side recorder (all nodes' links, node-stamped) as
  /// "<prefix>.hw.vhprec" and each node's board-side recorder as
  /// "<prefix>.<name>.board.vhprec". No-op Status unless obs.record is on.
  Status write_recordings(const std::string& prefix,
                          const std::map<std::string, std::string>& tags = {});

 private:
  struct IntWatch {
    sim::BoolSignal* line;
    u32 vector;
    bool prev = false;
  };

  struct Node {
    FabricNodeConfig config;  // name resolved
    net::CosimLink hw_link;
    std::optional<net::CosimLink> board_link;  // external, until taken
    std::unique_ptr<obs::Hub> hub;
    std::unique_ptr<cosim::DriverRegistry> registry;
    std::unique_ptr<board::BoardHost> host;  // null: external or event-loop
    /// Event-loop mode: the board owned directly (no host thread), pumped
    /// on the fabric's svc::EventLoop thread.
    std::unique_ptr<board::Board> loop_board;
    std::vector<IntWatch> watches;
    obs::Counter* data_writes = nullptr;
    obs::Counter* data_reads = nullptr;
    obs::Counter* interrupts_sent = nullptr;
  };

  /// Drains every node's DATA port once.
  Status service_data_ports();
  Status sample_interrupts();
  /// Batching flush (no-op on unbatched links): every alive node's DATA
  /// and INT frames cross before the barrier's CLOCK_TICKs.
  Status flush_node_links();
  [[nodiscard]] Node& node_at(std::size_t node);

  FabricConfig config_;
  Logger log_{"fabric"};

  std::shared_ptr<fault::FaultSchedule> schedule_;  // null when unarmed
  std::unique_ptr<obs::Hub> hub_;  // master side
  std::vector<std::unique_ptr<Node>> nodes_;

  sim::Kernel kernel_;
  sim::Clock clock_;
  std::unique_ptr<SyncCoordinator> coordinator_;

  /// Event-loop mode (FabricConfig::event_loop): one loop thread pumps
  /// every loop_board; created by start_boards(), joined by finish().
  std::unique_ptr<svc::EventLoop> loop_;
  /// Fallback pump tick: re-schedules itself (by copy) on the loop; owned
  /// here so the pending timer's copy holds no reference cycle.
  std::function<void()> loop_tick_;
  std::thread loop_thread_;

  u64 cycle_ = 0;
  bool started_ = false;
  bool handshaken_ = false;
  bool finished_ = false;
};

}  // namespace vhp::fabric
