// In-order pipeline timing model for an ISS core (fetch/decode/execute).
//
// Cycle-approximate contract: with an ideal memory system (1-cycle I-hit,
// 1-cycle D-hit) the pipelined cost of an instruction equals its flat
// StepResult cost — fetch and a hitting data access overlap the pipeline
// completely. Everything slower shows up as stall cycles:
//
//   cost = exec + (fetch_lat - 1) + (data_lat > 0 ? data_lat - 1 : 0)
//
// so an I-miss stalls the front end for the miss path minus the hidden hit
// cycle, and a D-miss (or bank conflict) stalls execute likewise. This is
// the property that keeps the single-core default bit-compatible with the
// legacy flat board: no memory hierarchy configured means fetch_lat =
// data_lat = "free", and the model charges exactly StepResult::cycles.
#pragma once

#include "vhp/common/types.hpp"

namespace vhp::mem {

/// Per-core pipeline stall accounting.
struct PipelineStats {
  u64 instructions = 0;
  u64 total_cycles = 0;
  u64 fetch_stall_cycles = 0;  // I-cache miss path beyond the hidden cycle
  u64 data_stall_cycles = 0;   // D-path beyond the hidden hit cycle
};

class PipelineModel {
 public:
  /// Timing of one retired instruction: `exec_cycles` is the flat cost from
  /// the ISS (StepResult::cycles), `fetch_cycles` the I-path latency and
  /// `data_cycles` the D-path latency (0 when the instruction touches no
  /// memory). Returns the modeled cost in CPU cycles.
  u64 instruction(u64 exec_cycles, u64 fetch_cycles, u64 data_cycles) {
    const u64 fetch_stall = fetch_cycles > 0 ? fetch_cycles - 1 : 0;
    const u64 data_stall = data_cycles > 0 ? data_cycles - 1 : 0;
    const u64 cost = exec_cycles + fetch_stall + data_stall;
    ++stats_.instructions;
    stats_.total_cycles += cost;
    stats_.fetch_stall_cycles += fetch_stall;
    stats_.data_stall_cycles += data_stall;
    return cost;
  }

  [[nodiscard]] const PipelineStats& stats() const { return stats_; }

 private:
  PipelineStats stats_;
};

}  // namespace vhp::mem
