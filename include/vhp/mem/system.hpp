// The assembled memory hierarchy of a many-core virtual board.
//
//   core 0..M-1  ──  L1 I$ + L1 D$  ──  interconnect  ──  banked memory
//
// MemorySystem owns per-core CorePorts (each an ICache/DCache pair plus a
// pipeline stall accountant) in front of one shared BankedMemory behind a
// fixed-latency interconnect. Everything is a *timing* model: functional
// data stays in sim::Memory, and every method answers in CPU cycles.
//
// Threading: all ports are driven from the board's single host thread (RTOS
// threads are fibers), so the model needs no locks; per-access counters are
// obs counters (relaxed atomics), so metric dumps from other threads see
// monotone values. Virtual time `now` is the calling core's cycle counter —
// cores interleave deterministically under the SMP kernel, so bank busy
// windows compose deterministically too.
#pragma once

#include <memory>
#include <vector>

#include "vhp/mem/banked_memory.hpp"
#include "vhp/mem/cache.hpp"
#include "vhp/mem/config.hpp"
#include "vhp/mem/pipeline.hpp"
#include "vhp/obs/hub.hpp"

namespace vhp::mem {

class MemorySystem;

/// One core's edge of the hierarchy: L1 I/D caches + stall accounting.
class CorePort {
 public:
  /// I-path timing of a fetch at `addr`, issued at virtual cycle `now`.
  u64 fetch(u64 addr, u64 now);
  /// D-path timing of a load/store at `addr`, issued at virtual cycle `now`.
  u64 data_access(u64 addr, bool is_store, u64 now);

  [[nodiscard]] Cache& icache() { return *icache_; }
  [[nodiscard]] Cache& dcache() { return *dcache_; }
  [[nodiscard]] PipelineModel& pipeline() { return pipeline_; }
  [[nodiscard]] u32 core() const { return core_; }

 private:
  friend class MemorySystem;
  CorePort(MemorySystem& system, u32 core, const MemConfig& config,
           obs::Hub& hub);

  /// Miss path: miss penalty + hop + bank (queue + access) + hop.
  u64 miss_cycles(u64 fill_addr, u64 issued_at);

  MemorySystem* system_;
  u32 core_;
  std::unique_ptr<Cache> icache_;
  std::unique_ptr<Cache> dcache_;
  PipelineModel pipeline_;

  obs::Counter& icache_hits_;
  obs::Counter& icache_misses_;
  obs::Counter& dcache_hits_;
  obs::Counter& dcache_misses_;
};

class MemorySystem {
 public:
  /// `config` must have passed MemConfig::validate(). `hub` is the session
  /// hub; nullptr (standalone wiring, unit tests) gets a private one.
  MemorySystem(MemConfig config, u32 cores, obs::Hub* hub = nullptr);
  ~MemorySystem();

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  [[nodiscard]] CorePort& port(u32 core) { return *ports_[core]; }
  [[nodiscard]] u32 cores() const { return static_cast<u32>(ports_.size()); }
  [[nodiscard]] BankedMemory& memory() { return banked_; }
  [[nodiscard]] const MemConfig& config() const { return config_; }
  [[nodiscard]] obs::Hub& obs() { return *hub_; }

 private:
  friend class CorePort;

  MemConfig config_;
  std::unique_ptr<obs::Hub> owned_hub_;
  obs::Hub* hub_;
  BankedMemory banked_;

  obs::Counter& bank_conflicts_;
  /// Distribution of cycles spent queued on a busy bank (recorded only on
  /// conflicts; buckets are cycles, not ns).
  obs::LatencyHistogram& bank_conflict_wait_;

  std::vector<std::unique_ptr<CorePort>> ports_;
};

}  // namespace vhp::mem
