// Shared banked memory timing model with per-bank request occupancy.
//
// Each bank tracks the virtual cycle until which it is busy; a request
// arriving earlier queues behind it (the per-bank request queue collapses
// to a busy-until stamp because requests are serviced in arrival order and
// the model only needs completion times, not queue contents). Contention is
// therefore visible as `wait_cycles` — exactly the stall the pipelined core
// charges — and counted per bank for the conflict histograms.
#pragma once

#include <vector>

#include "vhp/common/types.hpp"
#include "vhp/mem/config.hpp"

namespace vhp::mem {

/// Timing verdict of one bank request.
struct BankAccess {
  u32 bank = 0;
  /// Cycles spent queued behind earlier requests to the same bank.
  u64 wait_cycles = 0;
  /// Virtual cycle at which the data is back at the requester's edge of the
  /// interconnect (excludes the return hop).
  u64 complete_at = 0;
};

class BankedMemory {
 public:
  /// `config` must have passed BankedMemoryConfig::validate().
  explicit BankedMemory(BankedMemoryConfig config);

  /// Issues a request for `addr` at virtual cycle `now`; advances the
  /// bank's busy window and returns the timing verdict.
  BankAccess request(u64 addr, u64 now);

  [[nodiscard]] u32 bank_of(u64 addr) const {
    return static_cast<u32>((addr >> stride_shift_) % config_.banks);
  }

  [[nodiscard]] const BankedMemoryConfig& config() const { return config_; }
  [[nodiscard]] u64 requests() const { return requests_; }
  [[nodiscard]] u64 conflicts() const { return conflicts_; }
  [[nodiscard]] u64 conflict_wait_cycles() const { return conflict_wait_; }
  [[nodiscard]] u64 bank_requests(u32 bank) const {
    return per_bank_requests_[bank];
  }
  [[nodiscard]] u64 bank_conflicts(u32 bank) const {
    return per_bank_conflicts_[bank];
  }

 private:
  BankedMemoryConfig config_;
  u32 stride_shift_;
  std::vector<u64> busy_until_;
  std::vector<u64> per_bank_requests_;
  std::vector<u64> per_bank_conflicts_;
  u64 requests_ = 0;
  u64 conflicts_ = 0;
  u64 conflict_wait_ = 0;
};

}  // namespace vhp::mem
