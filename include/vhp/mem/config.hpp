// Configuration of the timing-accurate memory hierarchy (DESIGN.md §13).
//
// The legacy virtual board is a flat cycle-budget executor: every retired
// instruction costs its StepResult cycles and nothing else. The `vhp::mem`
// tier replaces that with a cycle-approximate model in the mgsim tradition:
// per-core L1 I/D caches, a shared banked memory with per-bank occupancy,
// and a fixed-latency interconnect between them. All knobs live here so a
// whole hierarchy is one aggregate literal — and so session validation can
// reject contradictory configurations before any thread boots.
#pragma once

#include "vhp/common/status.hpp"
#include "vhp/common/types.hpp"

namespace vhp::mem {

struct CacheConfig {
  /// Cache line size in bytes; must be a power of two >= 4.
  u32 line_bytes = 32;
  /// Associativity (ways per set); must be >= 1.
  u32 ways = 2;
  /// Number of sets; must be a power of two >= 1.
  u32 sets = 64;
  /// Cycles charged on a hit (the L1 pipeline-visible latency).
  u64 hit_cycles = 1;
  /// Extra cycles charged on a miss before the downstream access (tag
  /// compare + miss handling), on top of interconnect + bank time.
  u64 miss_penalty_cycles = 2;

  [[nodiscard]] u64 capacity_bytes() const {
    return static_cast<u64>(line_bytes) * ways * sets;
  }
  /// `what` names the cache in the error message ("icache"/"dcache").
  [[nodiscard]] Status validate(const char* what) const;
};

struct BankedMemoryConfig {
  /// Number of independent banks; must be > 0.
  u32 banks = 4;
  /// Bank interleave granularity in bytes; must be a power of two >= 4.
  /// Line-sized interleave (the default) spreads consecutive cache lines
  /// over consecutive banks.
  u32 stride_bytes = 32;
  /// Cycles from request acceptance to data return.
  u64 access_cycles = 6;
  /// Cycles a bank stays busy per request (occupancy; back-to-back requests
  /// to the same bank serialize on this).
  u64 busy_cycles = 4;

  [[nodiscard]] Status validate() const;
};

struct InterconnectConfig {
  /// Cycles per traversal (core->bank and bank->core each pay this).
  u64 hop_cycles = 2;
};

/// One aggregate describing the whole hierarchy of a many-core board.
struct MemConfig {
  CacheConfig icache{};
  CacheConfig dcache{};
  BankedMemoryConfig memory{};
  InterconnectConfig interconnect{};

  /// Checks every sub-config (power-of-two line sizes and strides, nonzero
  /// ways/sets/banks). Returned messages name the offending knob precisely.
  [[nodiscard]] Status validate() const;
};

}  // namespace vhp::mem
