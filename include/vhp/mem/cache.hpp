// Set-associative L1 cache timing model (tag array only).
//
// Data always lives in the board's sim::Memory — functional reads/writes
// are unchanged; this class answers the *timing* question "how many cycles
// does this access cost at virtual time `now`?". Write-allocate,
// write-back-less (stores hit or allocate like loads; there is no dirty
// writeback traffic in the model — a deliberate cycle-approximate cut, the
// same one mgsim's simple cache takes for its L1s).
#pragma once

#include <vector>

#include "vhp/common/types.hpp"
#include "vhp/mem/config.hpp"

namespace vhp::mem {

/// Timing verdict of one cache lookup.
struct CacheAccess {
  bool hit = false;
  /// Line-aligned address to fetch downstream on a miss.
  u64 fill_addr = 0;
};

class Cache {
 public:
  /// `config` must have passed CacheConfig::validate().
  explicit Cache(CacheConfig config);

  /// Looks up `addr`; on a miss the line is allocated (LRU victim evicted)
  /// and the caller is responsible for charging the downstream fill.
  CacheAccess access(u64 addr);

  /// Drops every line (e.g. between benchmark repetitions).
  void invalidate_all();

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] u64 hits() const { return hits_; }
  [[nodiscard]] u64 misses() const { return misses_; }
  [[nodiscard]] u64 evictions() const { return evictions_; }

 private:
  struct Way {
    u64 tag = 0;
    u64 lru = 0;  // higher = more recently used
    bool valid = false;
  };

  CacheConfig config_;
  u32 line_shift_;
  u32 set_mask_;
  std::vector<Way> ways_;  // sets * ways, row-major by set
  u64 use_clock_ = 0;      // LRU stamp source (per-access, deterministic)
  u64 hits_ = 0;
  u64 misses_ = 0;
  u64 evictions_ = 0;
};

}  // namespace vhp::mem
