// Bitmap priority scheduler with round-robin timeslicing (the eCos MLQ
// scheduler, simplified to one ready queue per priority + a 32-bit bitmap).
#pragma once

#include <array>
#include <deque>

#include "vhp/common/types.hpp"
#include "vhp/rtos/thread.hpp"

namespace vhp::rtos {

class Scheduler {
 public:
  /// Appends to the tail of its priority's ready queue.
  void make_ready(Thread* thread);

  /// Removes from its ready queue (e.g. when blocking).
  void remove(Thread* thread);

  /// Highest-priority ready thread; in `idle_state`, only communication
  /// threads are eligible (paper Section 5.3). nullptr when none.
  [[nodiscard]] Thread* pick(bool idle_state) const;

  /// SMP variant: highest-priority ready thread eligible on `core`
  /// (affinity kAnyCore or == core), honoring `idle_state` the same way.
  /// pick_for_core(0, s) == pick(s) when every thread has wildcard
  /// affinity — the single-core kernel keeps using pick().
  [[nodiscard]] Thread* pick_for_core(u32 core, bool idle_state) const;

  /// Moves the head of `priority`'s queue to the tail (timeslice expiry).
  void rotate(int priority);

  [[nodiscard]] bool any_ready(bool idle_state) const {
    return pick(idle_state) != nullptr;
  }

 private:
  std::array<std::deque<Thread*>, Thread::kPriorities> ready_;
  u32 bitmap_ = 0;  // bit p set <=> ready_[p] nonempty
};

}  // namespace vhp::rtos
