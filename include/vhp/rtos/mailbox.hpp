// Bounded message mailbox (eCos cyg_mbox), templated on the payload type.
// Producer blocks when full, consumer blocks when empty; both directions
// support tick-denominated timeouts.
#pragma once

#include <deque>
#include <optional>

#include "vhp/rtos/wait_queue.hpp"

namespace vhp::rtos {

class Kernel;

template <typename T>
class Mailbox {
 public:
  Mailbox(Kernel& kernel, std::size_t capacity)
      : not_empty_(kernel), not_full_(kernel), capacity_(capacity) {}

  /// Blocking put.
  void put(T item) {
    while (items_.size() >= capacity_) not_full_.wait();
    items_.push_back(std::move(item));
    not_empty_.wake_one();
  }

  /// Timed put; false when the box stayed full past the timeout.
  bool put_ticks(T item, SwTicks timeout) {
    while (items_.size() >= capacity_) {
      if (!not_full_.wait_ticks(timeout)) return false;
    }
    items_.push_back(std::move(item));
    not_empty_.wake_one();
    return true;
  }

  /// Non-blocking put; false when full.
  bool try_put(T item) {
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.wake_one();
    return true;
  }

  /// Blocking get.
  T get() {
    while (items_.empty()) not_empty_.wait();
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.wake_one();
    return item;
  }

  /// Timed get; nullopt on timeout.
  std::optional<T> get_ticks(SwTicks timeout) {
    while (items_.empty()) {
      if (!not_empty_.wait_ticks(timeout)) return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.wake_one();
    return item;
  }

  /// Non-blocking get.
  std::optional<T> try_get() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.wake_one();
    return item;
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return items_.empty(); }

 private:
  WaitQueue not_empty_;
  WaitQueue not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
};

}  // namespace vhp::rtos
