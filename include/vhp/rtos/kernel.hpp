// The RTOS kernel (eCos-like), hosting the paper's OS-side modifications.
//
// Execution model: the whole kernel runs inside ONE host thread (the virtual
// board's CPU). RTOS threads are fibers; the kernel's run() loop dispatches
// the highest-priority ready thread and regains control whenever that thread
// blocks, yields, exits, or crosses a preemption point inside consume().
//
// Virtual time: application code models CPU work by calling consume(cycles).
// Every `cycles_per_tick` consumed cycles, the timer "interrupt" fires: the
// real-time clock counter advances (alarms, delays, timeouts), and the
// running thread's timeslice is charged. In co-simulation (budget mode),
// consumable cycles are granted by CLOCK_TICK packets; exhausting the budget
// freezes the OS into the *idle* state (paper Section 5.3): a freeze
// callback reports the board tick (the TIME_ACK), and only communication
// threads plus the idle thread are scheduled until grant_cycles() is called
// again.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "vhp/common/log.hpp"
#include "vhp/common/types.hpp"
#include "vhp/rtos/interrupt.hpp"
#include "vhp/rtos/scheduler.hpp"
#include "vhp/rtos/thread.hpp"
#include "vhp/rtos/timer.hpp"
#include "vhp/rtos/wait_queue.hpp"

namespace vhp::rtos {

/// OS execution states (paper Figure 3/4).
enum class OsState {
  kNormal,  // all threads scheduled by priority
  kIdle,    // frozen: only communication threads + idle thread run
};

struct KernelConfig {
  /// Virtual CPU cycles per SW tick (the HW-timer divider).
  u64 cycles_per_tick = 100;
  /// Round-robin timeslice, in SW ticks.
  u64 timeslice_ticks = 5;
  /// When true, consumable cycles must be granted (co-simulation mode).
  /// When false the kernel free-runs as fast as the host executes.
  bool budget_mode = false;
  /// Virtual cores (SMP, DESIGN.md §13). 1 (default) is the legacy
  /// single-core kernel, bit-exact with every existing recording. M > 1
  /// gives each core its own run queue view (per-core dispatch with thread
  /// affinity), its own cycle counter and its own slice of every budget
  /// grant; the timer interrupt (RTC, timeslices) stays on core 0, the
  /// boot core — as on real SMP hardware with one global timer.
  u32 cores = 1;
  /// Real-time pacing (standalone mode only, ignored under budget_mode):
  /// when nonzero, idle-driven ticks are paced to this wall-clock period —
  /// the virtual board then behaves like the real one, whose HW timer
  /// interrupts every millisecond of real time. Application consume() is
  /// still work-based; pacing applies to waiting (delays, alarms).
  std::chrono::microseconds real_time_tick{0};
};

class Kernel {
 public:
  explicit Kernel(KernelConfig config = {});
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ----- threads -----

  /// Creates a thread; it becomes ready immediately.
  Thread& spawn(std::string name, int priority, Thread::Entry entry,
                std::size_t stack_bytes = Fiber::kDefaultStackBytes);

  [[nodiscard]] Thread* current() const { return current_; }
  /// Virtual core the current (or most recently dispatched) thread runs on.
  [[nodiscard]] u32 current_core() const { return current_core_; }
  [[nodiscard]] u32 cores() const { return config_.cores; }

  /// Blocks the calling thread until `thread` exits (no-op if it already
  /// has). eCos exposes the same through cyg_thread_join-style helpers.
  void join(Thread& thread);

  /// Runs the scheduler until shutdown() is called (or every non-comm,
  /// non-idle thread has exited, if `until_quiescent`).
  void run(bool until_quiescent = false);

  /// Cooperative stepping (the svc session server's hosting mode): runs
  /// the scheduler until the board is *starved* — frozen (or truly idle)
  /// with an idle poll reporting no external progress — or shut down.
  /// Fibers stay parked across calls; the caller re-invokes when new
  /// input arrives (readiness callback). Returns false once shut down.
  bool run_until_starved();

  /// True while inside run_until_starved() — lets the idle poll skip
  /// host-level pacing (sleeping would stall every session on the loop).
  [[nodiscard]] bool stepping() const { return step_mode_; }

  /// Requests run() to return at the next safe point. Callable from thread
  /// context or externally before run().
  void shutdown();
  [[nodiscard]] bool shutting_down() const { return shutdown_; }

  /// Voluntary yield: current thread goes to the tail of its priority queue.
  void yield();

  // ----- virtual time -----

  /// Models `cycles` of CPU work by the current thread. Preemption point:
  /// ticks fire inside, other threads may run, and in budget mode the call
  /// blocks while the OS is frozen waiting for a grant. Returns the cycles
  /// actually consumed — less than `cycles` only for a communication/idle
  /// thread bailing out on budget exhaustion (those never block on the
  /// budget).
  u64 consume(u64 cycles);

  /// Sleeps the current thread for `ticks` SW ticks of virtual time.
  void delay(SwTicks ticks);

  [[nodiscard]] SwTicks tick_count() const { return tick_count_; }
  [[nodiscard]] u64 cycle_count() const { return cycle_count_; }
  /// Per-core consumed cycles (core 0 == cycle_count()).
  [[nodiscard]] u64 core_cycle_count(u32 core) const {
    return core == 0 ? cycle_count_ : extra_cycles_[core - 1];
  }
  [[nodiscard]] u64 cycles_per_tick() const { return config_.cycles_per_tick; }
  [[nodiscard]] Counter& real_time_clock() { return rtc_; }

  // ----- co-simulation budget (paper Sections 4 and 5.3) -----

  [[nodiscard]] OsState state() const { return state_; }
  [[nodiscard]] bool budget_mode() const { return config_.budget_mode; }
  [[nodiscard]] u64 budget_cycles() const { return budget_cycles_; }
  /// Per-core remaining budget (core 0 == budget_cycles()).
  [[nodiscard]] u64 core_budget_cycles(u32 core) const {
    return core == 0 ? budget_cycles_ : extra_budget_[core - 1];
  }

  /// Grants `cycles` of execution budget *per core* and thaws the OS into
  /// the normal state: every core advances through the same grant wall in
  /// lockstep virtual time. Called by the board's systemc thread on
  /// CLOCK_TICK reception.
  void grant_cycles(u64 cycles);

  /// Lookahead (adaptive synchronization, DESIGN.md §10): CPU cycles until
  /// this kernel can next initiate an interaction, as seen at the current
  /// freeze point. 0 when any application thread is runnable (or starved
  /// mid-consume on the budget, or a DSR is pending) — work would continue
  /// immediately on the next grant. Otherwise the distance to the earliest
  /// pending alarm (delays, timeouts, app alarms). nullopt when no future
  /// event exists at all: the board is idle until data arrives, and the
  /// master may grant its maximum quantum. Conservative by construction —
  /// it never *under*states how soon the board may act, and events injected
  /// by the master itself (interrupts, DATA responses) don't count: the
  /// master knows when it sends those.
  ///
  /// SMP: the result is the minimum over cores by construction — a runnable
  /// or budget-starved thread on *any* core yields 0, and alarms live on
  /// the shared core-0 RTC (at a freeze every core has drained the same
  /// grants, so core-0 distance is the board-wide distance).
  [[nodiscard]] std::optional<u64> next_event_cycles() const;

  /// Invoked (once per freeze) when the budget is exhausted and the OS
  /// enters the idle state; receives the current board tick. The board
  /// module sends the TIME_ACK packet from here.
  void set_freeze_callback(std::function<void(SwTicks)> cb) {
    freeze_cb_ = std::move(cb);
  }

  /// Invoked by the idle thread when it has nothing to do: the board module
  /// polls its channels here and returns whether anything arrived. Runs in
  /// idle-thread context; a false return while frozen is the "starved"
  /// signal that ends run_until_starved().
  void set_idle_poll(std::function<bool()> poll) {
    idle_poll_ = std::move(poll);
  }

  /// Observes every OS state transition (paper Figures 3/4): called with
  /// the new state and the tick at which the switch happened.
  void set_state_trace(std::function<void(OsState, SwTicks)> trace) {
    state_trace_ = std::move(trace);
  }

  /// Observes every dispatch of a thread onto the virtual CPU (the board's
  /// observability layer draws the paper's Figure 4 thread timeline from
  /// this). Called from the scheduler loop just before the switch; unset by
  /// default and free when unset — keep the callback cheap.
  void set_switch_trace(std::function<void(const Thread&)> trace) {
    switch_trace_ = std::move(trace);
  }

  // ----- interrupts -----

  [[nodiscard]] InterruptController& interrupts() { return interrupts_; }

  /// Changes a thread's *effective* priority (priority inheritance; the
  /// base priority is untouched). Requeues the thread if it is ready.
  void set_effective_priority(Thread* thread, int priority);

  // ----- statistics -----

  struct Stats {
    u64 context_switches = 0;
    u64 ticks = 0;
    u64 freezes = 0;
    u64 grants = 0;
    u64 idle_cycles = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  friend class WaitQueue;
  friend class Thread;

  /// Blocks `current_` on `queue` and switches away. Core of WaitQueue.
  void block_current(WaitQueue& queue);
  void make_ready(Thread* thread);
  /// Called from the exiting thread's fiber just before it finishes.
  void on_thread_exit(Thread* thread);

  /// Switches from the current thread back to the scheduler loop.
  void reschedule_current();

  /// The timer ISR: advances the RTC (alarms fire), charges the running
  /// thread's timeslice, rotates on expiry.
  void timer_tick();

  /// Budget-exhaustion transition to the idle state. SMP: freezes (and
  /// fires the TIME_ACK callback) only once EVERY core's budget is drained.
  void enter_idle_state();
  [[nodiscard]] bool all_cores_exhausted() const;

  /// Idle thread body (one instance per core; `core` is the pinned core).
  void idle_loop(u32 core);

  /// Per-core budget slot (core 0 aliases the legacy member, keeping the
  /// single-core hot path untouched).
  [[nodiscard]] u64& core_budget(u32 core) {
    return core == 0 ? budget_cycles_ : extra_budget_[core - 1];
  }
  [[nodiscard]] u64& core_cycles(u32 core) {
    return core == 0 ? cycle_count_ : extra_cycles_[core - 1];
  }

  [[nodiscard]] bool quiescent() const;
  [[nodiscard]] bool is_idle_thread(const Thread* t) const {
    for (const Thread* idle : idle_threads_) {
      if (t == idle) return true;
    }
    return false;
  }

  KernelConfig config_;
  Logger log_{"rtos"};

  Scheduler scheduler_;
  std::vector<std::unique_ptr<Thread>> threads_;
  Thread* current_ = nullptr;
  Thread* idle_thread_ = nullptr;
  /// Per-core idle threads; [0] == idle_thread_.
  std::vector<Thread*> idle_threads_;

  Counter rtc_{"rtc"};
  SwTicks tick_count_{};
  u64 cycle_count_ = 0;
  /// Cores 1..M-1 (empty on a single-core kernel).
  std::vector<u64> extra_cycles_;
  std::vector<u64> extra_budget_;
  u32 current_core_ = 0;
  /// Round-robin start index of the SMP dispatch sweep.
  u32 dispatch_rr_ = 0;

  OsState state_ = OsState::kNormal;
  u64 budget_cycles_ = 0;
  std::function<void(SwTicks)> freeze_cb_;
  std::function<bool()> idle_poll_;
  std::function<void(OsState, SwTicks)> state_trace_;
  std::function<void(const Thread&)> switch_trace_;
  WaitQueue budget_wait_{*this};

  InterruptController interrupts_{*this};
  WaitQueue join_wait_{*this};

  bool shutdown_ = false;
  bool need_resched_ = false;
  bool in_run_loop_ = false;
  /// Cooperative stepping (run_until_starved): the loop exits when the
  /// core-0 idle poll reports no progress while nothing can advance.
  bool step_mode_ = false;
  bool starved_ = false;
  /// Next wall-clock tick deadline in real-time pacing mode.
  std::chrono::steady_clock::time_point rt_next_tick_{};

  Stats stats_;
};

}  // namespace vhp::rtos
