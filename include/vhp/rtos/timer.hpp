// Counters and alarms (eCos cyg_counter / cyg_alarm).
//
// The kernel owns one counter — the "real-time clock" — advanced once per SW
// tick by the timer interrupt path. Alarms attach to a counter and fire
// (one-shot or periodically) when it reaches their trigger value; thread
// delays and wait timeouts are alarms.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "vhp/common/types.hpp"

namespace vhp::rtos {

class Counter;

class Alarm {
 public:
  /// Handler runs in "tick context" (scheduler-safe point, current stack).
  using Handler = std::function<void(Alarm&, u64 counter_value)>;

  Alarm(Counter& counter, Handler handler);
  ~Alarm();

  Alarm(const Alarm&) = delete;
  Alarm& operator=(const Alarm&) = delete;

  /// Arms to fire when the counter reaches `trigger`; if `period` > 0 the
  /// alarm re-arms every `period` counts after that.
  void arm_at(u64 trigger, u64 period = 0);

  /// Arms relative to the counter's current value.
  void arm_in(u64 delta, u64 period = 0);

  void disarm();

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] u64 trigger() const { return trigger_; }

 private:
  friend class Counter;

  Counter& counter_;
  Handler handler_;
  u64 trigger_ = 0;
  u64 period_ = 0;
  bool armed_ = false;
};

class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] u64 value() const { return value_; }

  /// Advances by `n`, firing every alarm whose trigger is passed, in
  /// trigger order. Periodic alarms fire multiple times if overtaken.
  void advance(u64 n = 1);

  [[nodiscard]] bool has_pending_alarms() const { return !pending_.empty(); }
  /// Trigger value of the earliest pending alarm.
  [[nodiscard]] std::optional<u64> next_trigger() const {
    if (pending_.empty()) return std::nullopt;
    return pending_.begin()->first;
  }

 private:
  friend class Alarm;

  void enqueue(Alarm* alarm);
  void dequeue(Alarm* alarm);

  std::string name_;
  u64 value_ = 0;
  std::multimap<u64, Alarm*> pending_;
};

}  // namespace vhp::rtos
