// Thread synchronization objects (eCos cyg_mutex / cyg_sem / cyg_flag).
// All are thin layers over WaitQueue; the kernel is single-host-threaded,
// so no atomicity machinery is needed — blocking points are explicit.
#pragma once

#include <optional>

#include "vhp/common/types.hpp"
#include "vhp/rtos/wait_queue.hpp"

namespace vhp::rtos {

class Kernel;
class Thread;

class Mutex {
 public:
  /// Priority-inversion protocol (eCos offers the same choice).
  enum class Protocol {
    kNone,     // plain blocking mutex
    kInherit,  // owner inherits the highest waiting priority (default)
  };

  explicit Mutex(Kernel& kernel, Protocol protocol = Protocol::kInherit)
      : kernel_(kernel), queue_(kernel), protocol_(protocol) {}

  /// Blocks until the mutex is acquired. Recursion is a bug (asserted).
  void lock();
  /// Non-blocking acquire.
  bool try_lock();
  void unlock();

  [[nodiscard]] bool locked() const { return owner_ != nullptr; }
  [[nodiscard]] Thread* owner() const { return owner_; }
  [[nodiscard]] Protocol protocol() const { return protocol_; }

 private:
  friend class Kernel;

  void acquire(Thread* self);
  /// Highest (numerically smallest) priority among current waiters, or
  /// a sentinel when none wait.
  [[nodiscard]] int top_waiter_priority() const;

  Kernel& kernel_;
  WaitQueue queue_;
  Protocol protocol_;
  Thread* owner_ = nullptr;
};

/// RAII lock for Mutex.
class MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

class Semaphore {
 public:
  explicit Semaphore(Kernel& kernel, u32 initial = 0)
      : queue_(kernel), count_(initial) {}

  /// Decrements, blocking while zero.
  void wait();
  /// Like wait() but gives up after `timeout` SW ticks; false on timeout.
  bool wait_ticks(SwTicks timeout);
  /// Non-blocking decrement.
  bool try_wait();
  /// Increments and wakes one waiter.
  void post();

  [[nodiscard]] u32 count() const { return count_; }

 private:
  WaitQueue queue_;
  u32 count_;
};

/// Bit-mask event flag (eCos cyg_flag): waiters specify a mask and wake when
/// any of its bits are set; consumed bits are cleared on wake.
class EventFlag {
 public:
  explicit EventFlag(Kernel& kernel) : queue_(kernel) {}

  /// Sets bits and wakes every waiter whose mask now matches.
  void set(u32 bits);

  /// Blocks until (flags & mask) != 0; returns and clears the matched bits.
  u32 wait_any(u32 mask);

  /// Like wait_any but gives up after `timeout` SW ticks; nullopt then.
  std::optional<u32> wait_any_ticks(u32 mask, SwTicks timeout);

  [[nodiscard]] u32 peek() const { return bits_; }

 private:
  WaitQueue queue_;
  u32 bits_ = 0;
};

}  // namespace vhp::rtos
