// The blocking primitive underlying every synchronization object: a FIFO of
// blocked threads. Timed waits use an alarm on the kernel's real-time clock,
// so timeouts are measured in *virtual* SW ticks — while the OS is frozen in
// the idle state, timeouts are frozen too, which is exactly the semantics
// the virtual tick requires.
#pragma once

#include <deque>

#include "vhp/common/types.hpp"

namespace vhp::rtos {

class Kernel;
class Thread;

class WaitQueue {
 public:
  explicit WaitQueue(Kernel& kernel) : kernel_(kernel) {}
  ~WaitQueue();

  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  /// Blocks the current thread until woken.
  void wait();

  /// Blocks the current thread until woken or `timeout_ticks` SW ticks pass.
  /// Returns false on timeout.
  bool wait_ticks(SwTicks timeout_ticks);

  /// Wakes the longest-waiting thread (FIFO). No-op when empty.
  void wake_one();

  void wake_all();

  [[nodiscard]] bool empty() const { return waiters_.empty(); }
  [[nodiscard]] std::size_t size() const { return waiters_.size(); }
  [[nodiscard]] const std::deque<Thread*>& waiters() const {
    return waiters_;
  }

 private:
  friend class Kernel;

  /// Removes a specific thread (timeout path); returns true if it was here.
  bool remove(Thread* thread);

  Kernel& kernel_;
  std::deque<Thread*> waiters_;
};

}  // namespace vhp::rtos
