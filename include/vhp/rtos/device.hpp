// Device driver framework (eCos devtab).
//
// Drivers register under a name ("/dev/router0"); applications look them up
// and use the uniform read/write/ioctl interface. The paper's methodology
// hinges on this indirection: "the SW accesses the HW device under design
// through a device driver ... viewed as any other device", so swapping the
// simulated remote device for a real one is a devtab change, not an
// application change.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>

#include "vhp/common/bytes.hpp"
#include "vhp/common/status.hpp"
#include "vhp/common/types.hpp"

namespace vhp::rtos {

class Device {
 public:
  virtual ~Device() = default;

  /// Called once when the device is first looked up.
  virtual Status open() { return Status::Ok(); }

  /// Reads up to `max_bytes` from device address `address`.
  virtual Result<Bytes> read(u32 address, u32 max_bytes) = 0;

  /// Writes `data` at device address `address`.
  virtual Status write(u32 address, std::span<const u8> data) = 0;

  /// Driver-specific control; default rejects every request.
  virtual Status ioctl(u32 /*request*/, Bytes& /*inout*/) {
    return Status{StatusCode::kInvalidArgument, "unsupported ioctl"};
  }
};

class DeviceTable {
 public:
  /// Registers `device` under `name`; fails on duplicates.
  Status register_device(const std::string& name,
                         std::unique_ptr<Device> device);

  /// Looks up and (on first use) opens a device.
  Result<Device*> lookup(const std::string& name);

  [[nodiscard]] std::size_t size() const { return devices_.size(); }

 private:
  struct Entry {
    std::unique_ptr<Device> device;
    bool opened = false;
  };
  std::map<std::string, Entry> devices_;
};

}  // namespace vhp::rtos
