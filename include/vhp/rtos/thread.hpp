// RTOS threads.
//
// A thread is a fiber plus scheduling state, modeled on eCos cyg_thread:
// fixed priority (0 = highest), round-robin timeslicing among equal
// priorities, and a "communication thread" flag implementing the paper's
// Section 5.3: while the OS is in the *idle* state, only communication
// threads (plus the idle thread) are schedulable.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "vhp/common/fiber.hpp"
#include "vhp/common/types.hpp"

namespace vhp::rtos {

class Kernel;
class Mutex;
class Scheduler;
class WaitQueue;

class Thread {
 public:
  enum class State { kNew, kReady, kRunning, kBlocked, kExited };

  static constexpr int kPriorities = 32;  // 0 (highest) .. 31 (lowest)
  static constexpr int kIdlePriority = kPriorities - 1;
  /// Affinity wildcard: the thread may run on any core (SMP kernels).
  static constexpr int kAnyCore = -1;

  using Entry = std::function<void()>;

  Thread(Kernel& kernel, std::string name, int priority, Entry entry,
         std::size_t stack_bytes = Fiber::kDefaultStackBytes);

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Effective priority (may be boosted by priority inheritance).
  [[nodiscard]] int priority() const { return priority_; }
  /// Configured priority, never affected by inheritance.
  [[nodiscard]] int base_priority() const { return base_priority_; }
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool exited() const { return state_ == State::kExited; }

  /// Marks this thread as one of the paper's "communication threads": it
  /// stays schedulable while the OS is frozen in the idle state.
  void set_comm_thread(bool comm) { comm_thread_ = comm; }
  [[nodiscard]] bool is_comm_thread() const { return comm_thread_; }

  /// Core affinity (SMP kernels, DESIGN.md §13): pins the thread to one
  /// virtual core, or kAnyCore (default) to run wherever a core is free.
  /// Checked at dispatch, so it may be changed at any time.
  void set_affinity(int core) { affinity_ = core; }
  [[nodiscard]] int affinity() const { return affinity_; }
  [[nodiscard]] bool runs_on(u32 core) const {
    return affinity_ == kAnyCore || affinity_ == static_cast<int>(core);
  }

 private:
  friend class Kernel;
  friend class Scheduler;
  friend class WaitQueue;

  friend class Mutex;

  Kernel& kernel_;
  std::string name_;
  int priority_;
  int base_priority_;
  Entry entry_;
  /// Priority-inheriting mutexes currently held (for boost bookkeeping).
  std::vector<Mutex*> held_pi_mutexes_;
  Fiber fiber_;
  State state_ = State::kNew;
  bool comm_thread_ = false;
  int affinity_ = kAnyCore;
  /// Remaining ticks of the current timeslice. Preserved across the OS
  /// normal->idle->normal freeze cycle (the paper's "saves the context, in
  /// particular the value of the timeslice").
  u64 timeslice_left_ = 0;
  /// Wait queue this thread is blocked on, if any.
  WaitQueue* waiting_on_ = nullptr;
  /// Set when a timed wait expired instead of being woken.
  bool timed_out_ = false;
};

}  // namespace vhp::rtos
