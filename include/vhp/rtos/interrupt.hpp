// Two-level interrupt handling (eCos ISR + DSR).
//
// The ISR runs immediately when a vector is raised, with the scheduler
// conceptually locked; it does minimal work and may request its DSR. DSRs
// are queued and drained at the next scheduler-safe point, where they may
// wake threads (typically by posting a semaphore the driver thread waits
// on). The virtual device driver of the board module is built on this.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>

#include "vhp/common/types.hpp"

namespace vhp::rtos {

class Kernel;

/// Return value of an ISR.
enum class IsrResult {
  kHandled,        // done, no DSR needed
  kCallDsr,        // schedule the DSR
};

struct InterruptHandler {
  std::function<IsrResult(u32 vector)> isr;
  std::function<void(u32 vector)> dsr;  // may be empty when never requested
};

class InterruptController {
 public:
  explicit InterruptController(Kernel& kernel) : kernel_(kernel) {}

  /// Attaches a handler to a vector (replaces any previous one). `core`
  /// routes the vector's DSR to that virtual core on an SMP kernel
  /// (DESIGN.md §13): the DSR runs just before that core's next dispatch,
  /// so it preempts only that core's thread. Single-core kernels ignore it.
  void attach(u32 vector, InterruptHandler handler, u32 core = 0);
  void detach(u32 vector);

  /// Re-routes an attached vector's DSR to `core` (keeps the handler).
  void route(u32 vector, u32 core);
  /// Target core of a vector (0 when unattached).
  [[nodiscard]] u32 core_of(u32 vector) const;

  /// Masked vectors are recorded and delivered on unmask.
  void mask(u32 vector);
  void unmask(u32 vector);

  /// Raises `vector`: runs the ISR now; queues the DSR if requested.
  /// Unhandled vectors are counted (spurious interrupts).
  void raise(u32 vector);

  /// Drains queued DSRs; called by the kernel at safe points.
  void run_pending_dsrs();

  /// SMP variant: drains only DSRs routed to `core`, in queue order; called
  /// by the kernel just before dispatching that core.
  void run_pending_dsrs_for_core(u32 core);

  [[nodiscard]] u64 spurious_count() const { return spurious_; }
  [[nodiscard]] bool dsr_pending() const { return !dsr_queue_.empty(); }

 private:
  struct Entry {
    InterruptHandler handler;
    u32 core = 0;  // DSR routing target (SMP)
    bool masked = false;
    u32 pending_while_masked = 0;
  };

  struct PendingDsr {
    u32 vector;
    u32 core;
  };

  void run_dsr(u32 vector);

  Kernel& kernel_;
  std::unordered_map<u32, Entry> handlers_;
  std::deque<PendingDsr> dsr_queue_;
  u64 spurious_ = 0;
};

}  // namespace vhp::rtos
