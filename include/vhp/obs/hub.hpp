// The one observability object of a co-simulation: metrics + tracer +
// stall profiler behind a single switch.
//
// Ownership pattern: CosimSession owns a Hub and hands a Hub* to every layer
// it wires (CosimKernel, Board, instrumented channels). Components built
// without a session (unit tests, custom wiring) may pass nullptr and get a
// private, tracing-disabled Hub — metrics still count (they back the
// stats() compatibility views), tracing and wall-time profiling stay off.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "vhp/common/status.hpp"
#include "vhp/obs/flight_recorder.hpp"
#include "vhp/obs/metrics.hpp"
#include "vhp/obs/stall_profiler.hpp"
#include "vhp/obs/telemetry.hpp"
#include "vhp/obs/timeline.hpp"
#include "vhp/obs/trace.hpp"

namespace vhp::obs {

struct ObsConfig {
  /// Master switch for the *costly* instruments: timeline tracing, wall-time
  /// stall profiling, per-frame link accounting. Plain metric counters are
  /// always live — they are the components' stats() backing store and cost
  /// one relaxed increment each, exactly like the structs they replaced.
  bool enabled = false;
  /// Tracer buffer cap (events beyond it are dropped and counted).
  std::size_t max_trace_events = 1u << 20;
  /// Flight recorder: independent of `enabled` — ring-only frame capture is
  /// cheap enough to leave on while the costly instruments stay off.
  FlightRecorderConfig record{};
  /// Cross-node round/span tracing: independent of `enabled` for the same
  /// reason as the recorder — disarmed it costs one branch per call site and
  /// keeps the wire format round-free (v1/v2 byte-identical).
  TimelineConfig timeline{};
};

class Hub {
 public:
  explicit Hub(ObsConfig config = {});

  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] const ObsConfig& config() const { return config_; }

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] StallProfiler& profiler() { return profiler_; }

  /// Per-side flight recorders (rings stay empty unless config.record is
  /// enabled). The session wires these into the link via net::record_link.
  [[nodiscard]] FlightRecorder& hw_recorder() { return hw_recorder_; }
  [[nodiscard]] FlightRecorder& board_recorder() { return board_recorder_; }

  /// Cross-node causal timeline (rings stay empty unless config.timeline is
  /// enabled). Coordinator/kernel/board resolve their SpanSinks here.
  [[nodiscard]] Timeline& timeline() { return timeline_; }

  /// Starts the live telemetry endpoint on 127.0.0.1:`port` (0 = ephemeral,
  /// read back via telemetry_port()), serving this hub's metrics_json() per
  /// connection. `provider` overrides the served document — the fabric
  /// passes its merged multi-hub dump.
  Status serve_telemetry(u16 port = 0,
                         TelemetryServer::Provider provider = {});
  void stop_telemetry();
  [[nodiscard]] u16 telemetry_port() const { return telemetry_.port(); }
  [[nodiscard]] TelemetryServer& telemetry() { return telemetry_; }

  /// Registers a pre-dump hook: called by metrics_json() so lazily-computed
  /// series (RTOS kernel totals, profiler buckets) are fresh in the dump.
  /// Collectors run on the dumping thread; keep them read-only snapshots.
  void add_collector(std::function<void(MetricsRegistry&)> collector);

  /// Runs the collectors, then serializes every instrument to JSON.
  /// `node_prefix` is prepended to every key ("node0." makes
  /// "board.acks_sent" into "node0.board.acks_sent"), so the per-node hubs
  /// of a fabric merge into one document without key collisions — see
  /// merged_metrics_json().
  [[nodiscard]] std::string metrics_json(std::string_view node_prefix = {});
  Status write_metrics_json(const std::string& path);

  /// Runs the collectors and refreshes the lazily-computed instruments
  /// (profiler buckets, recorder gauges, tracer drop counts) without
  /// serializing. merged_metrics_json() calls this per hub before emitting
  /// the combined document.
  void collect();

  /// Serializes the tracer buffer as Chrome trace_event JSON.
  [[nodiscard]] std::string trace_json() const {
    return tracer_.to_chrome_json();
  }
  Status write_trace_json(const std::string& path) const {
    return tracer_.write_chrome_json(path);
  }

 private:
  ObsConfig config_;
  MetricsRegistry metrics_;
  Tracer tracer_;
  StallProfiler profiler_;
  FlightRecorder hw_recorder_;
  FlightRecorder board_recorder_;
  Timeline timeline_;
  TelemetryServer telemetry_;

  std::mutex collectors_mu_;
  std::vector<std::function<void(MetricsRegistry&)>> collectors_;
};

/// One metrics document spanning several hubs: each entry's prefix is
/// prepended to its hub's keys ("" for the lead hub, "node0."/"node1."/...
/// for the per-node hubs of a fabric). Runs every hub's collectors first.
[[nodiscard]] std::string merged_metrics_json(
    std::span<const std::pair<std::string, Hub*>> hubs);

}  // namespace vhp::obs
