// Unified metric primitives for the whole co-simulation stack.
//
// Every per-component counter struct (CosimKernel::Stats, Board::Stats, the
// channel byte counters) is a *view* over instruments registered here, so a
// single JSON dump describes one co-simulation run end to end — the paper's
// evaluation (Figures 5-7) is entirely about where time and traffic go, and
// BENCH_*.json trajectories need that to be self-describing.
//
// Hot-path contract: an update is one relaxed atomic RMW, no locks, no
// allocation. Registration (name lookup) takes a mutex and may allocate, so
// components resolve their instruments once at construction and keep the
// references; instrument storage is pointer-stable for the registry's
// lifetime.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "vhp/common/types.hpp"

namespace vhp::obs {

/// Monotonically increasing event count (messages, syncs, drops, ...).
class Counter {
 public:
  void inc(u64 n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] u64 value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<u64> value_{0};
};

/// Last-written level (queue depth, budget, configuration echo, ...).
class Gauge {
 public:
  void set(i64 v) { value_.store(v, std::memory_order_relaxed); }
  void add(i64 d) { value_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] i64 value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<i64> value_{0};
};

/// Fixed-bucket latency histogram: bucket i counts samples in
/// [2^i, 2^(i+1)) nanoseconds (bucket 0 additionally takes 0). Power-of-two
/// buckets make record() a bit_width plus one relaxed increment — cheap
/// enough for per-message paths — while still resolving the microsecond vs
/// millisecond split that dominates sync-stall analysis.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;  // up to ~2^40 ns ≈ 18 min

  void record_ns(u64 ns) {
    const std::size_t idx =
        ns == 0 ? 0
                : std::min<std::size_t>(std::bit_width(ns) - 1, kBuckets - 1);
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  [[nodiscard]] u64 count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 sum_ns() const {
    return sum_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean_ns() const {
    const u64 n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum_ns()) / static_cast<double>(n);
  }
  [[nodiscard]] u64 bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive lower edge of bucket i in nanoseconds.
  [[nodiscard]] static u64 bucket_floor_ns(std::size_t i) {
    return i == 0 ? 0 : u64{1} << i;
  }
  /// Conservative quantile estimate from the power-of-two buckets: the
  /// inclusive *upper* edge of the bucket where the cumulative count reaches
  /// ceil(q * count), so "p95_ns() == v" reads "at least 95% of samples were
  /// ≤ v". Bucket resolution bounds the error to one octave. 0 when empty;
  /// `q` is clamped to (0, 1].
  [[nodiscard]] u64 percentile_ns(double q) const;

 private:
  std::array<std::atomic<u64>, kBuckets> buckets_{};
  std::atomic<u64> count_{0};
  std::atomic<u64> sum_ns_{0};
};

/// Name-keyed instrument registry. Names are dotted paths
/// ("cosim.syncs", "net.hw.data.tx_bytes"); re-registering a name returns
/// the same instrument, so independent components may share one series.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] LatencyHistogram& histogram(std::string_view name);

  /// Instrument present (of any kind)?
  [[nodiscard]] bool contains(std::string_view name) const;

  /// Snapshot of every instrument as one JSON object:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// Histograms list only their non-empty buckets. `key_prefix` is prepended
  /// to every instrument name ("node0." turns "board.acks_sent" into
  /// "node0.board.acks_sent"), so several registries can merge into one
  /// document without key collisions.
  [[nodiscard]] std::string to_json(std::string_view key_prefix = {}) const;

  /// Section-emitter backing to_json(): appends this registry's instruments
  /// (prefixed) to the three JSON object bodies. `first_*` track whether a
  /// comma is due, so successive registries can share one document.
  void append_json_sections(std::string& counters, std::string& gauges,
                            std::string& histograms, std::string_view prefix,
                            bool& first_counter, bool& first_gauge,
                            bool& first_histogram) const;

  /// Visitors (sorted by name); used by the JSON dump and the tests.
  void for_each_counter(
      const std::function<void(const std::string&, const Counter&)>& fn) const;
  void for_each_gauge(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void for_each_histogram(
      const std::function<void(const std::string&, const LatencyHistogram&)>&
          fn) const;

 private:
  mutable std::mutex mu_;  // guards the maps, not the instruments
  std::map<std::string, Counter*, std::less<>> counters_;
  std::map<std::string, Gauge*, std::less<>> gauges_;
  std::map<std::string, LatencyHistogram*, std::less<>> histograms_;
  // Pointer-stable storage (deque never relocates existing elements).
  std::deque<Counter> counter_storage_;
  std::deque<Gauge> gauge_storage_;
  std::deque<LatencyHistogram> histogram_storage_;
};

/// Escapes `s` for inclusion in a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace vhp::obs
