// Timeline tracing in Chrome trace_event format (chrome://tracing, Perfetto).
//
// The paper's Figures 2/4 are timelines: virtual ticks, normal/idle OS
// switches, driver traffic. The Tracer records exactly those — named spans
// ('X' complete events) and instants ('i') with nanosecond wall-clock
// timestamps — from any host thread, and serializes them as
// {"traceEvents":[...]} JSON.
//
// Cost model: when disabled (the default), every record call is one branch
// on a const bool. When enabled, a record is a mutex-guarded append into a
// pre-reserved vector; events beyond `max_events` are counted as dropped
// rather than grown without bound.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "vhp/common/status.hpp"
#include "vhp/common/types.hpp"

namespace vhp::obs {

struct TracerConfig {
  bool enabled = false;
  /// Hard cap on buffered events; the surplus is counted in dropped().
  std::size_t max_events = 1u << 20;
};

class Tracer {
 public:
  explicit Tracer(TracerConfig config = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool enabled() const { return config_.enabled; }

  /// Nanoseconds since this tracer's construction (steady clock).
  [[nodiscard]] u64 now_ns() const;

  /// Point event ("i"); optional numeric argument shown in the viewer.
  void instant(std::string name, const char* category,
               std::optional<u64> arg = std::nullopt,
               const char* arg_name = "value");

  /// Duration event ("X") spanning [start_ns, end_ns] of this tracer's
  /// clock (use now_ns() to take the endpoints).
  void complete(std::string name, const char* category, u64 start_ns,
                u64 end_ns, std::optional<u64> arg = std::nullopt,
                const char* arg_name = "value");

  /// RAII span: records a complete event from construction to destruction.
  /// No-op (and no clock read) when the tracer is disabled.
  class Span {
   public:
    Span(Tracer& tracer, std::string name, const char* category)
        : tracer_(tracer), name_(std::move(name)), category_(category),
          start_ns_(tracer.enabled() ? tracer.now_ns() : 0) {}
    ~Span() {
      if (tracer_.enabled()) {
        tracer_.complete(std::move(name_), category_, start_ns_,
                         tracer_.now_ns());
      }
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    Tracer& tracer_;
    std::string name_;
    const char* category_;
    u64 start_ns_;
  };

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] u64 dropped() const;

  /// Serializes {"traceEvents":[...]} — timestamps in microseconds as the
  /// format requires, one pid, the recording host thread as tid.
  [[nodiscard]] std::string to_chrome_json() const;
  Status write_chrome_json(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    const char* category;
    char phase;  // 'X' or 'i'
    u64 ts_ns;
    u64 dur_ns;  // 'X' only
    u32 tid;
    std::optional<u64> arg;
    const char* arg_name;
  };

  void record(Event ev);

  TracerConfig config_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<Event> events_;
  u64 dropped_ = 0;
};

}  // namespace vhp::obs
