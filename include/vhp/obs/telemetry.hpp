// Live telemetry endpoint: a tiny TCP/JSON snapshot server plus the snapshot
// parsing/rendering helpers behind `vhptrace top` (DESIGN.md §7.2).
//
// Protocol, deliberately minimal: a client connects to the loopback port,
// the server writes ONE frame — u32 little-endian length + the hub's
// metrics JSON document — and closes. A refreshing viewer reconnects per
// sample; rates are computed client-side from successive snapshots. The
// framing matches net::Channel's, so net::connect_tcp_channel() + recv()
// is a complete client.
//
// Lives in vhp::obs (not vhp::net) because the Hub owns it and vhp_net
// already links against vhp_obs; the server therefore speaks raw POSIX
// sockets. It runs one background thread that only ever touches the
// provider callback — keep providers to read-only snapshots (metrics_json
// is).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>

#include "vhp/common/status.hpp"
#include "vhp/common/types.hpp"

namespace vhp::obs {

/// One-shot-per-connection JSON snapshot server on 127.0.0.1.
class TelemetryServer {
 public:
  /// Produces the document served to each connection; called on the server
  /// thread, so it must be safe against the instrumented run (Hub's
  /// metrics_json is).
  using Provider = std::function<std::string()>;

  TelemetryServer() = default;
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  /// accept thread. kFailedPrecondition if already running.
  Status start(Provider provider, u16 port = 0);

  /// Stops the accept thread and closes the listening socket. Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  /// Bound port (0 when not running).
  [[nodiscard]] u16 port() const { return port_; }
  /// Snapshots served so far.
  [[nodiscard]] u64 served() const { return served_.load(); }

 private:
  void serve_loop();

  Provider provider_;
  int listen_fd_ = -1;
  u16 port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<u64> served_{0};
  std::thread thread_;
};

/// Summary row of one histogram in a parsed snapshot.
struct HistogramSnapshot {
  u64 count = 0;
  u64 sum_ns = 0;
  u64 p50_ns = 0;
  u64 p95_ns = 0;
  u64 p99_ns = 0;
  [[nodiscard]] double mean_ns() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) /
                            static_cast<double>(count);
  }
};

/// Flat view over one served metrics document. Parsed with a scanner
/// specific to MetricsRegistry::to_json()'s machine-generated shape — not a
/// general JSON parser.
struct TelemetrySnapshot {
  bool ok = false;
  std::map<std::string, u64> counters;
  std::map<std::string, i64> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] u64 counter(std::string_view name) const;
  [[nodiscard]] i64 gauge(std::string_view name) const;
};

[[nodiscard]] TelemetrySnapshot parse_metrics_snapshot(std::string_view json);

/// `vhptrace top` body: fabric totals (round rate, barrier waits, faults)
/// plus one row per node (ack rate, grant sizes). `prev` + `dt_s` enable
/// the rate columns; pass nullptr for a single absolute snapshot.
[[nodiscard]] std::string telemetry_top_text(const TelemetrySnapshot& cur,
                                             const TelemetrySnapshot* prev,
                                             double dt_s);

}  // namespace vhp::obs
