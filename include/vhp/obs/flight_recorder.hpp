// Co-simulation flight recorder: a bounded per-side ring buffer of every
// frame crossing the three-port link (DATA/INT/CLOCK), cheap enough to
// leave on in production runs.
//
// The paper's whole methodology hinges on the frame traffic across the
// board<->kernel boundary; when a run hangs, drifts or produces a wrong
// router output, aggregate counters say *that* something went wrong but not
// *which frame*. The recorder keeps the last N frames per side — port,
// direction, message type, sequence number, HW virtual time, board SW tick,
// wall-clock delta and the payload (or a digest once it exceeds the cap) —
// so a post-mortem dump or a full recording can reproduce either side in
// isolation (see net/replay.hpp) or pinpoint the first divergent frame.
//
// Cost model: ring-only, no I/O until an explicit dump. A record is one
// mutex-guarded copy of at most `max_payload_bytes` into a pre-sized slot;
// when disabled the channel decorators are not even installed
// (net::record_channel returns the inner transport unchanged).
#pragma once

#include <chrono>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "vhp/common/bytes.hpp"
#include "vhp/common/types.hpp"
#include "vhp/obs/metrics.hpp"

namespace vhp::obs {

/// The three ports of the co-simulation link (DESIGN.md §6).
enum class LinkPort : u8 { kData = 0, kInt = 1, kClock = 2 };
/// Direction as seen by the recording side.
enum class LinkDir : u8 { kTx = 0, kRx = 1 };

[[nodiscard]] std::string_view to_string(LinkPort port);
[[nodiscard]] std::string_view to_string(LinkDir dir);

/// One recorded frame. `payload` holds at most the configured cap;
/// `payload_size` and `digest` (CRC-32 of the full frame) always describe
/// the complete original, so truncated records still compare.
/// FrameRecord::flags bit: the record is a synthetic fault marker stamped by
/// the fault injector (vhp::fault), not a frame that crossed the link. Its
/// payload names the injected fault kind. Divergence checking skips flagged
/// records so injected loss is never mistaken for real divergence.
inline constexpr u8 kFrameFlagInjected = 1u << 0;

struct FrameRecord {
  u64 seq = 0;        // per-side monotone sequence, global across ports
  LinkPort port = LinkPort::kData;
  LinkDir dir = LinkDir::kTx;
  /// Fabric node the frame's link belongs to. 0 for the classic two-party
  /// link, so single-node recordings stay byte-compatible on disk (the
  /// binary writer only switches to the node-carrying format when a
  /// nonzero node appears).
  u32 node = 0;
  /// kFrameFlag* bits; 0 for ordinary frames. Nonzero flags switch the
  /// binary writer to the V3 format (same byte-compatibility rule as node).
  u8 flags = 0;
  u8 msg_type = 0;    // first body byte (net::MsgType), 0 for empty frames
  bool truncated = false;
  u64 hw_cycle = 0;   // HW virtual time at record (kernel side)
  u64 board_tick = 0; // board SW tick at record (board side)
  u64 wall_ns = 0;    // wall-clock delta since the recorder's epoch
  u32 payload_size = 0;
  u32 digest = 0;     // CRC-32 of the full payload
  Bytes payload;
};

struct FlightRecorderConfig {
  /// Independent of ObsConfig::enabled: recording is cheap enough to leave
  /// on while the costly instruments stay off.
  bool enabled = false;
  /// Ring capacity per side; the oldest frames are evicted (and counted).
  std::size_t ring_frames = 4096;
  /// Payload bytes stored verbatim; longer frames keep size + digest only
  /// plus this prefix. Raise it when the recording feeds a replay.
  std::size_t max_payload_bytes = 256;
};

/// One per side of the link ("hw" / "board"), owned by the obs::Hub.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {},
                          std::string side = "");

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] const FlightRecorderConfig& config() const { return config_; }
  [[nodiscard]] const std::string& side() const { return side_; }

  /// Virtual-time stamp hooks, wired by CosimSession: the kernel side
  /// reports its cycle count, the board side its SW tick count. Each is
  /// invoked on the recording side's own thread.
  void set_hw_time_source(std::function<u64()> source);
  void set_board_time_source(std::function<u64()> source);

  /// Wall-clock origin of FrameRecord::wall_ns. The fabric re-bases every
  /// node recorder's epoch onto the master's so frames from different sides
  /// share one clock; call before any traffic is recorded (the record path
  /// reads the epoch without the lock).
  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const {
    return epoch_;
  }
  void set_epoch(std::chrono::steady_clock::time_point epoch) {
    epoch_ = epoch;
  }

  /// Appends one frame to the ring (no-op when disabled). `node` labels the
  /// fabric node whose link carried the frame; the classic two-party link
  /// records everything as node 0.
  void record(LinkPort port, LinkDir dir, std::span<const u8> frame,
              u32 node = 0);

  /// Appends a synthetic fault marker (kFrameFlagInjected) naming an
  /// injected fault, so recordings distinguish injected loss from real
  /// divergence. `kind` is the fault kind name ("drop", "reorder", ...),
  /// stored as the marker's payload. No-op when disabled.
  void note_fault(LinkPort port, LinkDir dir, std::string_view kind,
                  u32 node = 0);

  /// Frames ever recorded / evicted by ring wrap-around.
  [[nodiscard]] u64 recorded() const;
  [[nodiscard]] u64 evicted() const;

  /// The ring's current contents in sequence order (oldest first).
  [[nodiscard]] std::vector<FrameRecord> snapshot() const;

  /// Dump-time stats: obs.record.<side>.{frames,evicted} gauges.
  void export_to(MetricsRegistry& registry) const;

 private:
  FlightRecorderConfig config_;
  std::string side_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::function<u64()> hw_time_;
  std::function<u64()> board_time_;
  std::vector<FrameRecord> ring_;  // ring_[seq % ring_frames]
  u64 next_seq_ = 0;
};

}  // namespace vhp::obs
