// On-disk recording format for the flight recorder, plus the divergence
// checker that compares a live frame stream against a reference recording.
//
// Two interchangeable encodings, auto-detected on read:
//   * binary (".vhprec", magic "VHPREC01") — compact, the replay medium;
//   * JSONL (".jsonl", one JSON object per line after a header line) —
//     greppable, the post-mortem medium. Payloads are hex strings.
// Both carry the same data: a header naming the recording side ("hw" or
// "board") with free-form string tags (config echo: t_sync, packet counts,
// ...), then the FrameRecords in sequence order.
//
// The JSONL reader parses only what the writer emits (flat objects, known
// keys) — it is a recording loader, not a general JSON parser.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "vhp/common/status.hpp"
#include "vhp/obs/flight_recorder.hpp"

namespace vhp::obs {

struct RecordingMeta {
  std::string side;  // "hw" | "board"
  std::map<std::string, std::string> tags;
};

struct Recording {
  RecordingMeta meta;
  std::vector<FrameRecord> frames;  // ascending seq
};

enum class RecordingFormat { kBinary, kJsonl };

/// ".jsonl" / ".json" paths get JSONL, everything else binary.
[[nodiscard]] RecordingFormat format_for_path(const std::string& path);

Status write_recording(const std::string& path, const Recording& recording,
                       RecordingFormat format);
/// Auto-detects the encoding from the file's first bytes.
[[nodiscard]] Result<Recording> read_recording(const std::string& path);

/// One frame as a single JSONL line (no trailing newline).
[[nodiscard]] std::string frame_record_to_json(const FrameRecord& record);

// ---------------------------------------------------------------------------
// Divergence checking

/// Optional field-level diff provider: given two same-type frames that
/// differ, return a human description ("ClockTick.n_ticks: 100 vs 60").
/// The net layer supplies a Message-aware one (net::message_field_diff);
/// without it the checker reports the first differing byte offset.
using FrameDiffFn = std::string (*)(const FrameRecord& expected,
                                    const FrameRecord& actual);

/// The first mismatching frame between a reference recording and a live
/// stream: sequence number, node, port, virtual time and a field-level diff.
struct Divergence {
  u64 seq = 0;          // reference-side sequence of the mismatch
  LinkPort port = LinkPort::kData;
  LinkDir dir = LinkDir::kTx;
  u32 node = 0;         // fabric node of the mismatching stream
  u64 hw_cycle = 0;     // reference virtual time at the mismatch
  u64 board_tick = 0;
  std::string reason;   // what differs (type / size / field / extra frame)
  [[nodiscard]] std::string to_string() const;
};

/// Byte-level frame equality via the stored prefix + full-payload digest
/// (works for truncated records too). Returns a reason string on mismatch,
/// empty when equal; `diff` refines same-type payload mismatches.
[[nodiscard]] std::string compare_frames(const FrameRecord& expected,
                                         const FrameRecord& actual,
                                         FrameDiffFn diff = nullptr);

/// Feeds a live side's frames, in emission order, against the reference
/// recording of the same side and direction-expects. Per-(node,port,dir)
/// FIFO order — fabric recordings interleave N nodes' links in one global
/// sequence and stay diffable per node; the first mismatch is latched and
/// everything after it ignored.
class DivergenceChecker {
 public:
  explicit DivergenceChecker(const Recording& reference,
                             FrameDiffFn diff = nullptr);

  /// Checks the live side's next frame on `node`'s `port`/`dir`. Returns
  /// false once diverged (this call or earlier).
  bool check(LinkPort port, LinkDir dir, std::span<const u8> frame,
             u32 node = 0);

  /// Record-level variant for comparing two recordings: `live` carries its
  /// own full-frame size and digest, so truncated records on either side
  /// compare by common stored prefix + digest instead of falsely diverging
  /// on the clipped payload.
  bool check(const FrameRecord& live);

  [[nodiscard]] const std::optional<Divergence>& divergence() const {
    return divergence_;
  }
  [[nodiscard]] u64 matched() const { return matched_; }

 private:
  static constexpr std::size_t kQueuesPerNode = 6;  // 3 ports x 2 directions
  /// Queue storage grows with the highest node id seen (fabrics are small).
  std::size_t queue_index(u32 node, LinkPort port, LinkDir dir);

  struct Queue {
    std::vector<FrameRecord> frames;
    std::size_t next = 0;
  };

  FrameDiffFn diff_;
  std::vector<Queue> queues_;
  std::optional<Divergence> divergence_;
  u64 matched_ = 0;
};

/// Offline variant for `vhptrace diff`: first mismatch between two
/// recordings (walked in per-(port,dir) FIFO order, `a` as the reference).
[[nodiscard]] std::optional<Divergence> diff_recordings(
    const Recording& a, const Recording& b, FrameDiffFn diff = nullptr);

// ---------------------------------------------------------------------------
// Report rendering (the vhptrace subcommands, kept here so tests cover them
// without spawning the binary)

/// Per-port/type frame counts, byte totals and time span, as a text table.
[[nodiscard]] std::string recording_stats_text(const Recording& recording);

/// Chrome trace_event JSON of a recording (one instant per frame, ts from
/// the wall-clock delta) — open in chrome://tracing / Perfetto.
[[nodiscard]] std::string recording_to_chrome_json(const Recording& recording);

}  // namespace vhp::obs
