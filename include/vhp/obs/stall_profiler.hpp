// Where does run_cycles() wall time actually go?
//
// The paper's overhead numbers (Figures 5/6) fold three very different costs
// into one wall-clock figure: executing the HDL model, servicing driver DATA
// traffic, and stalling for the board's TIME_ACK. The StallProfiler splits
// them: the co-simulation kernel brackets each phase with a Timer, and the
// accumulated per-bucket nanoseconds land in the metrics dump
// (cosim.wall.<bucket>_ns), so a BENCH trajectory can say "94% of the
// overhead at T_sync=10 is ack-wait" instead of just "it is 100x slower".
//
// Disabled (default) cost: one branch per Timer, no clock reads.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <string_view>

#include "vhp/common/types.hpp"

namespace vhp::obs {

class MetricsRegistry;

class StallProfiler {
 public:
  enum class Bucket : std::size_t {
    kSimulate = 0,     // advancing the HDL model (sim::Kernel::run)
    kDataService = 1,  // draining/answering DATA_PORT traffic
    kAckWait = 2,      // blocked on the board's TIME_ACK
    kCount = 3,
  };
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(Bucket::kCount);

  explicit StallProfiler(bool enabled = false) : enabled_(enabled) {}

  StallProfiler(const StallProfiler&) = delete;
  StallProfiler& operator=(const StallProfiler&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }

  void add_ns(Bucket bucket, u64 ns) {
    auto& cell = cells_[static_cast<std::size_t>(bucket)];
    cell.ns.fetch_add(ns, std::memory_order_relaxed);
    cell.samples.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] u64 total_ns(Bucket bucket) const {
    return cells_[static_cast<std::size_t>(bucket)].ns.load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] u64 samples(Bucket bucket) const {
    return cells_[static_cast<std::size_t>(bucket)].samples.load(
        std::memory_order_relaxed);
  }

  [[nodiscard]] static std::string_view bucket_name(Bucket bucket);

  /// Publishes the buckets as gauges: cosim.wall.<bucket>_ns and
  /// cosim.wall.<bucket>_intervals.
  void export_to(MetricsRegistry& metrics) const;

  /// RAII phase bracket. When the profiler is disabled this is two branches
  /// and no clock reads.
  class Timer {
   public:
    Timer(StallProfiler& profiler, Bucket bucket)
        : profiler_(profiler), bucket_(bucket) {
      if (profiler_.enabled_) start_ = std::chrono::steady_clock::now();
    }
    ~Timer() {
      if (profiler_.enabled_) {
        const auto end = std::chrono::steady_clock::now();
        profiler_.add_ns(
            bucket_,
            static_cast<u64>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                     start_)
                    .count()));
      }
    }
    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;

   private:
    StallProfiler& profiler_;
    Bucket bucket_;
    std::chrono::steady_clock::time_point start_{};
  };

 private:
  struct Cell {
    std::atomic<u64> ns{0};
    std::atomic<u64> samples{0};
  };

  bool enabled_;
  std::array<Cell, kBucketCount> cells_{};
};

}  // namespace vhp::obs
