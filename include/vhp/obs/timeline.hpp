// Cross-node causal timeline for the co-simulation fabric (DESIGN.md §7.2).
//
// The paper's headline cost metric is slowdown versus real time; the barrier
// histograms say *that* a round was slow, this layer says *why*. Every
// barrier round gets a round id (stamped on CLOCK_TICK, echoed on TIME_ACK —
// wire v3, length-versioned like the v2 lookahead), and both sides record
// per-round SpanRecords into fixed-size rings: the coordinator's scatter /
// gather / per-node wait phases and each board's compute (tick-rx → ack-tx)
// and frozen phases. The analyzer joins the spans on (round, node) and
// decomposes fabric wall-clock into compute / wait / transport per node,
// names the per-round straggler, and reports the slowdown factor.
//
// Cost model (flight-recorder discipline): when disabled — the default —
// every record call is one branch on a const bool, no clock read. When
// enabled, a record is two steady_clock reads bracketing the phase plus one
// mutex-guarded store into a pre-sized ring; the ring overwrites oldest and
// counts drops, so a forgotten timeline can never grow without bound.
#pragma once

#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "vhp/common/types.hpp"

namespace vhp::obs {

class MetricsRegistry;

/// Phase of one barrier round, on either side of the link.
enum class SpanPhase : u8 {
  kScatter = 0,   // coordinator: CLOCK_TICK sends for this round
  kGather = 1,    // coordinator: first send until last TIME_ACK
  kNodeWait = 2,  // coordinator: node's tick send until its ack arrival
  kCompute = 3,   // board: tick receive until ack send (granted execution)
  kFrozen = 4,    // board: ack send until the next tick receive
  kBarrier = 5,   // coordinator: the whole round (scatter + gather)
};

[[nodiscard]] std::string_view to_string(SpanPhase p);

/// One recorded phase of one round on one node. Timestamps are nanoseconds
/// on the owning Timeline's epoch (fabric aligns all node epochs to the
/// master's, so spans from different rings compare directly).
struct SpanRecord {
  u64 round = 0;
  u32 node = 0;
  SpanPhase phase = SpanPhase::kBarrier;
  u64 start_ns = 0;
  u64 end_ns = 0;
  /// Master sim-cycle of the round's grant (ClockTick::sim_cycle); lets the
  /// analyzer convert wall spans into the paper's slowdown factor.
  u64 cycle = 0;
};

struct TimelineConfig {
  /// Master switch: off keeps every record call a single branch and keeps
  /// CLOCK/TIME_ACK frames byte-identical to wire v1/v2 (no round stamped).
  bool enabled = false;
  /// Ring capacity per sink; oldest spans are overwritten and counted.
  std::size_t ring_spans = 1u << 13;
};

/// Fixed-size overwrite-oldest span ring. One sink per recording thread
/// (coordinator, each board) so hot-path contention is a short uncontended
/// lock; snapshot() is the only cross-thread reader.
class SpanSink {
 public:
  SpanSink(const TimelineConfig& config, std::string name);

  SpanSink(const SpanSink&) = delete;
  SpanSink& operator=(const SpanSink&) = delete;

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] const std::string& name() const { return name_; }

  void record(const SpanRecord& span);

  [[nodiscard]] u64 recorded() const;
  [[nodiscard]] u64 dropped() const;

  /// Ring contents oldest-first.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

 private:
  TimelineConfig config_;
  std::string name_;

  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  std::size_t next_ = 0;
  u64 recorded_ = 0;
  u64 dropped_ = 0;
};

/// The per-hub timeline: a shared epoch plus named sinks. Owned by obs::Hub;
/// the fabric re-bases every node hub's epoch onto the master's at
/// construction so cross-hub spans share one clock.
class Timeline {
 public:
  explicit Timeline(TimelineConfig config = {});

  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] const TimelineConfig& config() const { return config_; }

  /// Nanoseconds since epoch (steady clock). Callers on the hot path must
  /// branch on enabled() first — this always reads the clock.
  [[nodiscard]] u64 now_ns() const;

  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const;
  void set_epoch(std::chrono::steady_clock::time_point epoch);

  /// Get-or-create a named sink ("fabric", "board", "cosim"). The reference
  /// stays valid for the Timeline's lifetime; resolve once at construction.
  [[nodiscard]] SpanSink& sink(std::string_view name);

  /// All sinks' rings merged, sorted by start_ns.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Gauges `timeline.spans` / `timeline.dropped_spans` (totals across
  /// sinks); called from Hub::collect() when the timeline is enabled.
  void export_to(MetricsRegistry& registry) const;

 private:
  TimelineConfig config_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;  // guards the sink list, not the sinks
  std::vector<std::unique_ptr<SpanSink>> sinks_;
};

/// One barrier round as the analyzer sees it.
struct RoundSummary {
  u64 round = 0;
  u64 cycle = 0;     // grant sim-cycle
  u64 start_ns = 0;  // earliest span start in the round
  u64 end_ns = 0;    // latest span end
  u32 nodes = 0;     // parties seen this round
  /// Straggler chain: the node whose ack closed the round, and how long the
  /// coordinator waited on it beyond the fastest node's ack.
  u32 straggler = 0;
  u64 straggler_wait_ns = 0;
};

/// Per-node wall-clock attribution across the analyzed window.
struct NodeAttribution {
  u32 node = 0;
  std::string name;
  u64 rounds = 0;
  u64 wait_ns = 0;       // coordinator-side: tick send → ack arrival
  u64 compute_ns = 0;    // board-side: tick receive → ack send
  u64 transport_ns = 0;  // wait − compute, clamped at 0 (wire + queueing)
  u64 straggler_rounds = 0;  // rounds this node closed
};

/// Whole-window decomposition: where did the fabric's wall-clock go?
struct TimelineAnalysis {
  std::vector<RoundSummary> rounds;
  std::vector<NodeAttribution> nodes;
  u64 wall_ns = 0;            // first span start → last span end
  u64 barrier_wall_ns = 0;    // Σ per-round (max wait across nodes)
  u64 master_compute_ns = 0;  // wall − barrier_wall: master sim + data
  u64 virtual_cycles = 0;     // last grant cycle − first grant cycle
  /// Wall time per simulated cycle; with the 1 GHz reference (1 cycle ≡
  /// 1 ns, DESIGN.md §7.2) this is the paper's slowdown factor.
  double slowdown = 0.0;
  /// |Σ attributed − wall| / wall: how well the per-node decomposition
  /// reconciles with total fabric wall-clock (acceptance gate: ≤ 5%).
  double reconciliation_error = 0.0;
};

/// Joins coordinator- and board-side spans on (round, node). `node_names`
/// maps node id → display name (missing ids render as "node<i>").
[[nodiscard]] TimelineAnalysis analyze_spans(
    const std::vector<SpanRecord>& spans,
    const std::map<u32, std::string>& node_names = {});

/// Per-round table: round id, grant cycle, duration, straggler.
[[nodiscard]] std::string timeline_report_text(const TimelineAnalysis& a,
                                               std::size_t max_rounds = 32);

/// Critical-path report: per-node compute/wait/transport decomposition,
/// straggler ranking, slowdown factor, reconciliation.
[[nodiscard]] std::string critical_report_text(const TimelineAnalysis& a);

/// The analysis as one JSON object (rounds elided, per-node attribution +
/// totals); Fabric::metrics_json() embeds it under a "timeline" key.
[[nodiscard]] std::string timeline_analysis_json(const TimelineAnalysis& a);

/// Chrome trace_event JSON with one track per node (master phases on tid 1,
/// node n's spans on tid n+2), timestamps in microseconds.
[[nodiscard]] std::string spans_to_chrome_json(
    const std::vector<SpanRecord>& spans,
    const std::map<u32, std::string>& node_names = {});

}  // namespace vhp::obs
