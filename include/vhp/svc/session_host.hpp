// Event-driven hosting of a CosimSession (DESIGN.md §14).
//
// The classic drive is one blocked host thread per board (BoardHost) plus
// the caller blocking in run_cycles(). SessionHost replaces both with
// cooperative stepping on a shared svc::EventLoop: the board's RTOS runs
// in fibers pumped until starved (Board::pump), the master kernel runs in
// non-blocking slices (CosimKernel::pump), and the host re-posts itself
// while either side makes progress. Hundreds of sessions share one loop
// thread this way — per-session cost is one step callback per quantum,
// not one parked OS thread.
//
// Wakeup sources, in order of preference:
//   * self-posting: a step that made progress posts the next step — the
//     hot path for self-contained (inproc/shm) sessions never touches
//     epoll timeouts;
//   * transport doorbells: every readable_fd() of both link sides is
//     watched, so an external peer (or a latency-emulation thread)
//     delivering a frame wakes exactly the right session;
//   * a fallback timer: a periodic re-poll (default 1ms) covers decorator
//     timers (retransmission timeouts) and any transport without an fd.
//
// All SessionHosts of one loop step on the loop thread; Board fibers are
// not migratable, so start() defers the boot to that thread too.
#pragma once

#include <chrono>
#include <functional>
#include <memory>

#include "vhp/cosim/session.hpp"
#include "vhp/svc/event_loop.hpp"

namespace vhp::svc {

struct SessionHostConfig {
  /// Total HW clock cycles to drive the session for.
  u64 cycles = 0;
  /// Master-kernel cycles per step slice: the scheduling granularity of
  /// the loop. Smaller = fairer interleaving across sessions, larger =
  /// less callback overhead. The quantum boundary still rules the
  /// protocol — a slice that hits an un-acked tick parks early.
  u64 cycles_per_step = 1024;
  /// Fallback re-poll period (0 disables the timer).
  std::chrono::nanoseconds fallback_period = std::chrono::milliseconds{1};
};

class SessionHost {
 public:
  using DoneFn = std::function<void(Status)>;

  /// Hosts `session` on `loop`. The session must not have start_board()
  /// called — the host pumps the board cooperatively. `on_done` runs on
  /// the loop thread once `config.cycles` cycles completed (or on the
  /// first transport/protocol error). Both referents must outlive the
  /// host.
  SessionHost(EventLoop& loop, cosim::CosimSession& session,
              SessionHostConfig config, DoneFn on_done = {});
  ~SessionHost();

  SessionHost(const SessionHost&) = delete;
  SessionHost& operator=(const SessionHost&) = delete;

  /// Arms the host: boots the board, registers doorbells and the fallback
  /// timer, posts the first step. Safe from any thread (defers to the
  /// loop thread); call at most once.
  void start();

  [[nodiscard]] bool done() const { return done_.load(); }
  /// Final status; Ok until done() (errors land together with done_).
  [[nodiscard]] Status status() const;
  [[nodiscard]] u64 cycles_done() const { return cycles_done_.load(); }

 private:
  void arm_on_loop();
  void step();
  void finish(Status s);

  EventLoop& loop_;
  cosim::CosimSession& session_;
  SessionHostConfig config_;
  DoneFn on_done_;
  Logger log_{"svc"};

  obs::Counter& steps_;
  obs::LatencyHistogram& step_ns_;
  /// Loop-wide census: svc.sessions on the *loop's* hub counts hosts
  /// currently live (armed, not done).
  obs::Gauge& sessions_gauge_;

  std::vector<int> watched_fds_;
  /// Re-schedules itself (by copy) until done; owned here so the pending
  /// timer's copy holds no reference cycle.
  std::function<void()> fallback_tick_;
  EventLoop::TimerId fallback_timer_ = 0;

  std::atomic<bool> done_{false};
  std::atomic<u64> cycles_done_{0};
  bool started_ = false;
  bool armed_ = false;
  bool step_posted_ = false;  // loop-thread only: collapse wakeup storms
  Status status_ = Status::Ok();  // written on the loop thread before done_
};

}  // namespace vhp::svc
