// Single-threaded readiness loop for the co-simulation session server
// (DESIGN.md §14).
//
// One EventLoop multiplexes many concurrent sessions per process: instead
// of one blocked host thread per board, sessions register readiness fds
// (transport doorbells) and get stepped from callbacks. The loop is an
// epoll reactor with three wakeup sources:
//   * watched fds (level-triggered EPOLLIN) — transport doorbells,
//     listener sockets, anything with a readable_fd();
//   * a posted-task queue (eventfd-backed, thread-safe post()) — the
//     "keep stepping while progressing" drive of self-contained sessions;
//   * a timer heap (timerfd-backed, monotonic clock) — fallback polls,
//     retransmission timeouts, watchdogs.
//
// Dispatch is strictly single-threaded: all callbacks run on the thread
// inside run(). watch/unwatch/post/schedule/cancel are safe from any
// thread *and* from inside callbacks (reentrancy-safe: the loop snapshots
// nothing across a callback, it re-reads the registration table per
// event).
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "vhp/common/log.hpp"
#include "vhp/common/status.hpp"
#include "vhp/obs/hub.hpp"

namespace vhp::svc {

class EventLoop {
 public:
  using Task = std::function<void()>;
  using TimerId = u64;

  /// `hub` receives the svc.loop.* instruments; nullptr gets a private
  /// hub (counters still run, they back the accessors).
  explicit EventLoop(obs::Hub* hub = nullptr);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Watches `fd` for readability (level-triggered); `cb` runs on the loop
  /// thread every iteration the fd is readable. Re-watching an fd replaces
  /// its callback. The caller keeps ownership of the fd and must unwatch
  /// before closing it.
  Status watch(int fd, Task cb);
  void unwatch(int fd);

  /// Enqueues `task` to run on the loop thread and wakes the loop.
  /// Thread-safe; usable before run() (tasks run once the loop starts).
  void post(Task task);

  /// One-shot timer: runs `task` on the loop thread once `delay` has
  /// elapsed. Returns an id for cancel(). Thread-safe.
  TimerId schedule(std::chrono::nanoseconds delay, Task task);
  /// Cancels a scheduled timer; false if it already fired (or never was).
  bool cancel(TimerId id);

  /// Dispatches until stop(). Call from exactly one thread — that thread
  /// becomes the loop thread, and every callback runs on it.
  void run();
  /// Makes run() return after the current iteration. Thread-safe.
  void stop();

  [[nodiscard]] u64 iterations() const { return iterations_.value(); }
  [[nodiscard]] u64 tasks_run() const { return tasks_run_.value(); }
  [[nodiscard]] u64 fd_events() const { return fd_events_.value(); }
  [[nodiscard]] u64 timers_fired() const { return timers_fired_.value(); }

  [[nodiscard]] obs::Hub& obs() { return *hub_; }

 private:
  void wake();
  void drain_wakeup();
  void rearm_timerfd_locked();
  void run_due_timers();
  void run_posted_tasks();

  Logger log_{"svc"};
  std::unique_ptr<obs::Hub> owned_hub_;
  obs::Hub* hub_;
  obs::Counter& iterations_;
  obs::Counter& tasks_run_;
  obs::Counter& fd_events_;
  obs::Counter& timers_fired_;
  /// Iteration dispatch time (poll return to poll re-entry) — the loop
  /// latency a hosted session sees on top of its own step cost.
  obs::LatencyHistogram& dispatch_ns_;

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;  // eventfd: post()/stop()
  int timer_fd_ = -1;   // timerfd: earliest deadline of timers_

  std::mutex mu_;  // guards watches_, posted_, timers_, next_timer_id_
  std::map<int, std::shared_ptr<Task>> watches_;
  std::vector<Task> posted_;
  struct Timer {
    TimerId id;
    Task task;
  };
  std::multimap<std::chrono::steady_clock::time_point, Timer> timers_;
  TimerId next_timer_id_ = 1;

  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
};

}  // namespace vhp::svc
