// Fault-injecting channel decorator (DESIGN.md §9).
//
// Wraps ONE side of a link — by convention the hw/master side — and applies
// the compiled FaultSchedule's verdicts to both directions: kTx faults on
// the send path (hw -> board), kRx faults on the receive path (board -> hw).
// Wrapping a single side keeps every lane's frame counter in one place, so
// a plan's decisions are a pure function of the frame sequence.
//
// Composes with the other decorators; the canonical stack (innermost
// first) is: transport -> emulate_latency -> fault::inject -> fault::reliable
// -> instrument_channel -> record_channel. Injecting *below* the recovery
// layer means faults hit the recovery protocol's wire frames — exactly what
// a lossy network would do — and the layers above only ever see repaired
// traffic. Zero-hop: a null or unarmed schedule returns `inner` unchanged.
#pragma once

#include <memory>

#include "vhp/fault/plan.hpp"
#include "vhp/net/channel.hpp"

namespace vhp::fault {

/// Decorates one channel endpoint. `port`/`node` name the lane for the
/// schedule's bookkeeping.
[[nodiscard]] net::ChannelPtr inject(net::ChannelPtr inner,
                                     std::shared_ptr<FaultSchedule> schedule,
                                     obs::LinkPort port, u32 node = 0);

/// Decorates all three ports of one link side.
[[nodiscard]] net::CosimLink inject_link(
    net::CosimLink link, std::shared_ptr<FaultSchedule> schedule,
    u32 node = 0);

}  // namespace vhp::fault
