// Link-level recovery: sequence numbers, ack/retransmit, redelivery
// filtering and reconnect-with-resync (DESIGN.md §9).
//
// ReliableChannel speaks a small sub-frame protocol over any net::Channel:
//   kPayload  [tag=1][u64 seq][u64 ack][u32 crc][payload...]
//   kAck      [tag=2][u64 ack][u32 crc]
//   kHello    [tag=3][u64 rx_next][u32 crc]   (reconnect resync)
// The CRC covers the whole sub-frame, so a byte corrupted *anywhere* —
// header or payload — turns the frame into garbage that is dropped and
// later repaired by retransmission. Acks are cumulative; redelivered
// frames (seq < rx_next) are filtered and re-acked, out-of-order frames
// buffered until the gap fills. Retransmission backs off exponentially
// from `rto` to `rto_max` and gives up (kAborted) after
// `max_retransmit_rounds` rounds without progress.
//
// The virtual-time guarantee: reliable_link() couples a link's three
// channels so that any CLOCK send first *flushes* the sibling DATA and INT
// channels (waits until every frame they sent is acked) and then flushes
// itself. Since ClockTick / TimeAck are the protocol's sync points, every
// frame belonging to a quantum is delivered before the quantum boundary
// crosses the link — which is why a faulted run converges to the clean
// run's virtual-time trace bit-exactly instead of smearing deliveries into
// later quanta.
//
// Transport loss (a dropped TCP connection) is recovered through an
// optional redial callback: the channel redials with bounded backoff,
// sends kHello carrying its receive cursor, and both sides retransmit
// whatever the other has not acknowledged.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "vhp/net/channel.hpp"
#include "vhp/obs/hub.hpp"

namespace vhp::fault {

struct RecoveryConfig {
  bool enabled = false;
  /// Initial retransmission timeout; doubles per silent round up to
  /// rto_max.
  std::chrono::milliseconds rto{5};
  std::chrono::milliseconds rto_max{200};
  /// Consecutive retransmission rounds without ack progress before the
  /// channel gives up with kAborted.
  u32 max_retransmit_rounds = 2000;
  /// CLOCK sends flush sibling channels first (see header comment). Leave
  /// on; exposed for protocol experiments.
  bool flush_on_clock_send = true;
  std::chrono::milliseconds flush_timeout{10000};
  /// Reconnect: first redial delay (doubles per attempt) and attempt cap.
  std::chrono::milliseconds redial_backoff{20};
  u32 max_redials = 10;
};

/// Produces a replacement transport for a lost one (e.g. re-dial the TCP
/// port, or re-accept on the listening side).
using RedialFn = std::function<Result<net::ChannelPtr>()>;

/// Wire helpers, public for tests that handcraft peer frames.
namespace wire {
inline constexpr u8 kPayload = 1;
inline constexpr u8 kAck = 2;
inline constexpr u8 kHello = 3;
[[nodiscard]] Bytes encode_payload(u64 seq, u64 ack,
                                   std::span<const u8> payload);
[[nodiscard]] Bytes encode_ack(u64 ack);
[[nodiscard]] Bytes encode_hello(u64 rx_next);
}  // namespace wire

class ReliableChannel final : public net::Channel {
 public:
  /// `name` tags this endpoint's counters: fault.<name>.retransmits etc.
  ReliableChannel(net::ChannelPtr inner, RecoveryConfig config,
                  obs::Hub* hub = nullptr, std::string name = {},
                  RedialFn redial = {});
  ~ReliableChannel() override;

  Status send(std::span<const u8> frame) override;
  Result<Bytes> recv(
      std::optional<std::chrono::milliseconds> timeout) override;
  Result<std::optional<Bytes>> try_recv() override;
  void close() override;

  /// Blocks (pumping acks and retransmissions) until every sent frame has
  /// been acknowledged, or the timeout expires.
  Status flush(std::chrono::milliseconds timeout);

  /// Transport-level flush/readiness (net::Channel overrides): forwarded
  /// to the inner transport. Distinct from the ack-flush above.
  Status flush() override;
  int readable_fd() override;

  /// Channels whose in-flight frames must land before this channel sends
  /// (the CLOCK -> {DATA, INT} coupling; see header comment).
  void set_flush_siblings(std::vector<ReliableChannel*> siblings);

  /// The other channels of this link side. A blocked flush() pumps them so
  /// cross-lane acks keep flowing: the peer may be flushing a *different*
  /// channel (its DATA flush awaits our DATA ack while our CLOCK flush
  /// awaits its CLOCK ack), and without mutual pumping the two flushes
  /// deadlock until timeout. reliable_link() wires all three.
  void set_pump_peers(std::vector<ReliableChannel*> peers);

  /// Introspection for tests.
  [[nodiscard]] u64 retransmits() const;
  [[nodiscard]] u64 dup_filtered() const;
  [[nodiscard]] u64 crc_dropped() const;
  [[nodiscard]] u64 reconnects() const;
  [[nodiscard]] u64 unacked() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Wraps one side of a link. `side` tags the counters ("hw" / "board" /
/// "node3.board"). Zero-hop: returns `link` unchanged unless
/// config.enabled. The CLOCK channel gets the sibling-flush coupling.
[[nodiscard]] net::CosimLink reliable_link(net::CosimLink link,
                                           const RecoveryConfig& config,
                                           obs::Hub* hub,
                                           const std::string& side);

/// Single-channel variant for custom wiring and tests.
[[nodiscard]] net::ChannelPtr reliable(net::ChannelPtr inner,
                                       const RecoveryConfig& config,
                                       obs::Hub* hub = nullptr,
                                       std::string name = {},
                                       RedialFn redial = {});

}  // namespace vhp::fault
