// Deterministic, seed-driven fault plans (DESIGN.md §9).
//
// A FaultPlan is a declarative list of rules — "drop 5% of CLOCK frames in
// both directions", "blackout node 2's link for 40 frames once" — plus one
// seed. Compiling it into a FaultSchedule produces a decision engine whose
// verdicts depend only on (seed, rule set, per-lane frame index): two runs
// with the same plan see the identical fault sequence regardless of wall
// clock, thread scheduling or transport, which is what lets the chaos suite
// assert bit-exact convergence against a clean baseline.
//
// Plans come from code (designated initializers) or JSON (see plan_from_json;
// the README "chaos testing" section shows the format). The schedule is
// consumed by the fault::inject(...) link decorator and reports everything it
// does through the obs::Hub (fault.injected.* counters, per-fault trace
// instants) and an optional observer hook (flight-recorder markers).
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "vhp/common/rng.hpp"
#include "vhp/common/status.hpp"
#include "vhp/obs/flight_recorder.hpp"
#include "vhp/obs/hub.hpp"

namespace vhp::fault {

enum class FaultKind : u8 {
  kDrop = 0,       // frame vanishes
  kDuplicate,      // frame delivered twice
  kReorder,        // frame swaps with the next frame on its lane
  kDelay,          // frame held for `delay` wall time, then delivered
  kCorrupt,        // one payload byte XOR-flipped
  kStall,          // lane frozen for `delay` wall time (frame intact)
  kDisconnect,     // lane blackout: this and the next `burst`-1 frames vanish
};

[[nodiscard]] std::string_view to_string(FaultKind kind);
[[nodiscard]] std::optional<FaultKind> fault_kind_from_name(
    std::string_view name);

/// FaultRule::node wildcard: the rule applies to every node's link.
inline constexpr u32 kAnyNode = ~u32{0};

/// One injection rule. A rule matches a lane — the (node, port, direction)
/// triple of a frame — and fires on each matching frame with `probability`,
/// within an optional frame-index window and total-event budget.
struct FaultRule {
  FaultKind kind = FaultKind::kDrop;
  u32 node = kAnyNode;                   // kAnyNode = every node
  std::optional<obs::LinkPort> port;     // nullopt = every port
  std::optional<obs::LinkDir> dir;       // nullopt = both directions
  double probability = 1.0;              // per matching frame
  u64 first_frame = 0;                   // lane frame index window [first,
  u64 last_frame = ~u64{0};              //   last], inclusive
  u64 max_events = ~u64{0};              // total firings across all lanes
  std::chrono::microseconds delay{500};  // kDelay / kStall hold time
  u64 burst = 8;                         // kDisconnect blackout length
};

struct FaultPlan {
  u64 seed = 1;
  std::vector<FaultRule> rules;

  [[nodiscard]] bool armed() const { return !rules.empty(); }
  /// True when no rule can lose or mutate a frame (only kDelay / kStall):
  /// such a plan is safe to run without the recovery layer.
  [[nodiscard]] bool lossless() const;
  [[nodiscard]] Status validate() const;

  FaultPlan& add(FaultRule rule) {
    rules.push_back(rule);
    return *this;
  }
};

/// JSON round trip. The format is a flat object per rule:
///   {"seed": 7, "rules": [
///     {"kind": "drop", "port": "clock", "probability": 0.05},
///     {"kind": "disconnect", "node": 1, "burst": 40, "max_events": 1}]}
/// Unknown keys are rejected-by-omission (ignored); missing keys take the
/// FaultRule defaults. `dir` is "tx" | "rx" (hw-side view), `port` is
/// "data" | "int" | "clock", `delay_us` maps to FaultRule::delay.
[[nodiscard]] Result<FaultPlan> plan_from_json(std::string_view json);
[[nodiscard]] std::string plan_to_json(const FaultPlan& plan);
/// Reads a plan file (JSON as above).
[[nodiscard]] Result<FaultPlan> load_plan(const std::string& path);

/// One fault decision, as reported to counters / tracer / observer and
/// consumed by the injecting channel decorator.
struct FaultEvent {
  FaultKind kind = FaultKind::kDrop;
  u32 node = 0;
  obs::LinkPort port = obs::LinkPort::kData;
  obs::LinkDir dir = obs::LinkDir::kTx;
  u64 frame_index = 0;                  // per-lane index of the hit frame
  std::chrono::microseconds delay{0};   // kDelay / kStall hold
  std::size_t corrupt_offset = 0;       // kCorrupt byte offset
  u8 corrupt_mask = 0xff;               // kCorrupt XOR mask
};

/// A compiled plan: one shared, thread-safe decision engine consulted by
/// every injector decorator of a session/fabric. Deterministic — each
/// (rule, lane) pair owns an Rng stream seeded from (plan seed, rule index,
/// lane), advanced once per matching frame.
class FaultSchedule {
 public:
  using Observer = std::function<void(const FaultEvent&)>;

  explicit FaultSchedule(FaultPlan plan, obs::Hub* hub = nullptr);

  FaultSchedule(const FaultSchedule&) = delete;
  FaultSchedule& operator=(const FaultSchedule&) = delete;

  [[nodiscard]] bool armed() const { return plan_.armed(); }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Called (under the schedule lock — keep it fast) for every injected
  /// fault; the session/fabric wires it to FlightRecorder::note_fault.
  void set_observer(Observer observer);

  /// Decides the fate of the next frame on lane (node, port, dir).
  /// Advances the lane's frame index; returns the fault to apply, or
  /// nullopt for clean passage. `frame_size` bounds kCorrupt's offset.
  [[nodiscard]] std::optional<FaultEvent> next(u32 node, obs::LinkPort port,
                                               obs::LinkDir dir,
                                               std::size_t frame_size);

  /// Total faults injected so far.
  [[nodiscard]] u64 injected() const;

 private:
  struct LaneRule {
    std::size_t rule_index = 0;
    Rng rng;
  };
  struct Lane {
    u64 frames = 0;          // frames seen on this lane
    u64 blackout_until = 0;  // kDisconnect: drop frames with index < this
    std::vector<LaneRule> rules;
  };

  Lane& lane_at(u32 node, obs::LinkPort port, obs::LinkDir dir);
  void report(const FaultEvent& event);

  FaultPlan plan_;
  obs::Hub* hub_ = nullptr;

  mutable std::mutex mu_;
  std::map<u64, Lane> lanes_;            // key packs (node, port, dir)
  std::vector<u64> rule_events_;         // firings per rule (max_events)
  u64 injected_ = 0;
  Observer observer_;
};

/// Compiles an armed plan; returns nullptr for an empty one so callers can
/// keep the zero-hop path trivial.
[[nodiscard]] std::shared_ptr<FaultSchedule> compile(const FaultPlan& plan,
                                                     obs::Hub* hub = nullptr);

}  // namespace vhp::fault
