// The case-study packet (paper Section 6): source address, destination
// address, identifier "used for debugging purposes only", data field, and a
// 16-bit error-detection checksum (RFC 1071 Internet checksum over the
// whole packet with the checksum field zeroed).
#pragma once

#include <optional>

#include "vhp/common/bytes.hpp"
#include "vhp/common/types.hpp"

namespace vhp::router {

struct Packet {
  u8 src = 0;
  u8 dst = 0;
  u32 id = 0;
  Bytes payload;
  u16 checksum = 0;

  bool operator==(const Packet&) const = default;

  /// Wire layout: [src u8][dst u8][id u32][len u32][payload][checksum u16].
  [[nodiscard]] Bytes pack() const;

  /// Parses a packed packet; nullopt on structural corruption (truncation,
  /// bad length). A wrong checksum still parses — checksum verification is
  /// the application's job.
  [[nodiscard]] static std::optional<Packet> unpack(std::span<const u8> raw);

  /// Computes and stores the checksum so that a packed packet verifies.
  void finalize_checksum();

  /// Recomputes the checksum over this packet's content and compares.
  [[nodiscard]] bool checksum_ok() const;

  /// Extracts just the id field from a packed packet without a full parse
  /// (used by the board application to acknowledge unparseable packets).
  [[nodiscard]] static std::optional<u32> peek_id(std::span<const u8> raw);
};

/// True iff `raw` is a packed packet whose embedded checksum verifies.
[[nodiscard]] bool packed_checksum_ok(std::span<const u8> raw);

}  // namespace vhp::router
