// The board-side C application of the case study: woken by the router
// device's interrupt, it reads the posted packet over the DATA port,
// spends modeled CPU cycles computing the Internet checksum, and writes the
// verdict (id << 1 | ok) back to the device.
#pragma once

#include "vhp/board/board.hpp"
#include "vhp/rtos/sync.hpp"

namespace vhp::router {

struct ChecksumAppConfig {
  u32 packet_addr = 0x0;   // must match RouterConfig::packet_out_addr
  u32 verdict_addr = 0x4;  // must match RouterConfig::verdict_in_addr
  u32 max_packet_bytes = 2048;
  /// Modeled software cost of one verification, in board CPU cycles.
  u64 cost_base = 100;
  u64 cost_per_byte = 4;
  int priority = 8;
};

class ChecksumApp {
 public:
  /// Installs the device DSR and spawns the application thread. Must be
  /// constructed before Board::run() starts.
  ChecksumApp(board::Board& board, ChecksumAppConfig config = {});

  ChecksumApp(const ChecksumApp&) = delete;
  ChecksumApp& operator=(const ChecksumApp&) = delete;

  [[nodiscard]] u64 processed() const { return processed_; }
  [[nodiscard]] u64 rejected() const { return rejected_; }

 private:
  void app_loop();

  board::Board& board_;
  ChecksumAppConfig config_;
  rtos::Semaphore pending_;
  u64 processed_ = 0;
  u64 rejected_ = 0;
};

}  // namespace vhp::router
