// The 4-port packet router HDL model (paper Section 6): "an extension of the
// Multicast Helix Packet Switch example distributed with SystemC".
//
// Packets arrive on input FIFOs; a full buffer drops the packet. The main
// process pops packets, has their checksum verified — either locally (the
// standalone simulation baseline) or by the C application on the board,
// through driver ports + the device interrupt (the co-simulated design under
// test) — then forwards good packets to the output selected by the routing
// table.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "vhp/cosim/driver_port.hpp"
#include "vhp/router/packet.hpp"
#include "vhp/sim/fifo.hpp"
#include "vhp/sim/module.hpp"

namespace vhp::router {

struct RouterConfig {
  std::size_t n_ports = 4;
  /// Per-input-port buffer depth; overflow drops (the Figure 7 mechanism).
  std::size_t buffer_depth = 4;
  /// HW pipeline cost per packet, in clock cycles.
  u64 proc_cycles = 2;
  /// Simulation time units per clock cycle (must match the driving clock).
  sim::SimTime clock_period = 2;
  /// Offload checksum verification to the board via driver ports.
  bool remote_checksum = false;
  /// Device address map (remote mode).
  u32 packet_out_addr = 0x0;  // board reads the posted packet here
  u32 verdict_in_addr = 0x4;  // board writes (id << 1 | ok) here
  /// Give up waiting for a board verdict after this many cycles and drop
  /// the packet (0 = wait forever). A defensive bound: the protocol
  /// guarantees delivery, but a buggy/bring-up board must not wedge the
  /// HDL model.
  u64 verdict_timeout_cycles = 0;
  /// Destination address -> output port. Empty: dst % n_ports.
  std::map<u8, std::size_t> routes;
};

class RouterModule : public sim::Module {
 public:
  struct Stats {
    u64 accepted = 0;          // entered an input buffer
    u64 dropped_input_full = 0;
    u64 processed = 0;         // popped by the main process
    u64 forwarded = 0;
    u64 dropped_bad_checksum = 0;
    u64 dropped_no_route = 0;
    u64 dropped_verdict_timeout = 0;
    u64 checksum_requests = 0;  // remote verdicts requested
  };

  /// `registry` is required in remote-checksum mode.
  RouterModule(sim::Kernel& kernel, RouterConfig config,
               cosim::DriverRegistry* registry = nullptr);

  /// Fabric variant: one remote verifier per registry, each with its own
  /// driver-port pair and interrupt line at the SAME device addresses —
  /// per-node registries keep them apart. A packet arriving on input port p
  /// is verified by verifier p % registries.size() (the router_fabric case
  /// study maps one board per router port). One registry behaves exactly
  /// like the two-party constructor.
  RouterModule(sim::Kernel& kernel, RouterConfig config,
               const std::vector<cosim::DriverRegistry*>& registries);

  /// Feeds a packet into input port `port`; false (and a drop count) when
  /// the buffer is full. Generators call this.
  bool offer(std::size_t port, Packet packet);

  [[nodiscard]] sim::Fifo<Packet>& output(std::size_t port) {
    return *outputs_[port];
  }
  [[nodiscard]] std::size_t input_occupancy(std::size_t port) const {
    return inputs_[port]->size();
  }

  /// Device interrupt line (remote mode); wire to
  /// CosimKernel::watch_interrupt. With several verifiers this is
  /// verifier 0's line.
  [[nodiscard]] sim::BoolSignal& irq() { return irq_; }

  /// Verifier v's interrupt line (remote mode; wire each to its node via
  /// Fabric::watch_interrupt).
  [[nodiscard]] sim::BoolSignal& irq(std::size_t verifier) {
    return *verifiers_[verifier].irq;
  }
  [[nodiscard]] std::size_t verifier_count() const {
    return verifiers_.size();
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const RouterConfig& config() const { return config_; }

  /// True when every accepted packet has been fully processed.
  [[nodiscard]] bool drained() const;

 private:
  /// One remote checksum endpoint: driver-port pair + interrupt line.
  struct Verifier {
    sim::BoolSignal* irq;  // irq_ for verifier 0, owned lines beyond
    std::unique_ptr<cosim::DriverOut<Bytes>> packet_out;
    std::unique_ptr<cosim::DriverIn<u32>> verdict_in;
  };

  void main_loop();
  /// nullopt = the board never answered within the verdict timeout.
  [[nodiscard]] std::optional<bool> verify_remote(const Packet& packet,
                                                  std::size_t in_port);
  [[nodiscard]] std::size_t route_of(u8 dst) const;

  RouterConfig config_;
  std::vector<std::unique_ptr<sim::Fifo<Packet>>> inputs_;
  std::vector<std::unique_ptr<sim::Fifo<Packet>>> outputs_;
  sim::BoolSignal irq_;
  std::vector<std::unique_ptr<sim::BoolSignal>> extra_irqs_;
  std::vector<Verifier> verifiers_;
  Stats stats_;
};

}  // namespace vhp::router
