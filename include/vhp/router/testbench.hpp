// The full HW-side configuration of the paper's experiment: one producer per
// router input, the router, one consumer per output — ready to drive either
// standalone (local checksum) or co-simulated (remote checksum + ChecksumApp
// on the board).
#pragma once

#include <memory>
#include <vector>

#include "vhp/router/router.hpp"
#include "vhp/router/traffic.hpp"

namespace vhp::router {

struct TestbenchConfig {
  RouterConfig router{};
  /// Packets each producer emits; N_total = n_ports * packets_per_port.
  u64 packets_per_port = 25;
  u64 gap_cycles = 1000;
  std::size_t payload_bytes = 32;
  double corrupt_probability = 0.0;
  u64 seed = 42;
};

class RouterTestbench {
 public:
  RouterTestbench(sim::Kernel& kernel, TestbenchConfig config,
                  cosim::DriverRegistry* registry = nullptr);

  /// Fabric variant: one remote verifier per registry (see the matching
  /// RouterModule constructor) — the router_fabric case study passes one
  /// per-node registry per router port.
  RouterTestbench(sim::Kernel& kernel, TestbenchConfig config,
                  const std::vector<cosim::DriverRegistry*>& registries);

  [[nodiscard]] RouterModule& router() { return *router_; }
  [[nodiscard]] const TestbenchConfig& config() const { return config_; }

  [[nodiscard]] u64 total_emitted() const;
  [[nodiscard]] u64 total_received() const;
  [[nodiscard]] u64 total_integrity_failures() const;

  /// All producers finished and the router processed everything it accepted.
  [[nodiscard]] bool traffic_done() const;

  /// The paper's accuracy metric: packets handled / packets sent.
  [[nodiscard]] double forward_ratio() const;

 private:
  TestbenchConfig config_;
  std::unique_ptr<RouterModule> router_;
  std::vector<std::unique_ptr<PacketGenerator>> generators_;
  std::vector<std::unique_ptr<PacketConsumer>> consumers_;
};

}  // namespace vhp::router
