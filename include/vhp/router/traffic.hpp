// Traffic endpoints of the case study: the packet producer ("generates
// packets with a random destination address") attached to a router input,
// and the consumer ("analyzes the integrity of the received packet")
// attached to an output.
#pragma once

#include "vhp/common/rng.hpp"
#include "vhp/router/router.hpp"
#include "vhp/sim/module.hpp"

namespace vhp::router {

struct GeneratorConfig {
  std::size_t port = 0;     // router input port to feed
  u8 src_address = 0;
  u64 count = 100;          // packets to emit
  u64 gap_cycles = 1000;    // cycles between packets
  std::size_t payload_bytes = 32;
  u64 seed = 1;
  /// Probability of emitting a corrupted packet (error-path exercise).
  double corrupt_probability = 0.0;
  sim::SimTime clock_period = 2;
};

class PacketGenerator : public sim::Module {
 public:
  PacketGenerator(sim::Kernel& kernel, RouterModule& router,
                  GeneratorConfig config);

  [[nodiscard]] u64 emitted() const { return emitted_; }
  [[nodiscard]] u64 corrupted() const { return corrupted_; }
  [[nodiscard]] bool done() const { return done_; }

  /// Builds the next packet this generator would emit (exposed for tests).
  [[nodiscard]] Packet make_packet();

 private:
  void produce_loop();

  RouterModule& router_;
  GeneratorConfig config_;
  Rng rng_;
  u32 next_id_;
  u64 emitted_ = 0;
  u64 corrupted_ = 0;
  bool done_ = false;
};

struct ConsumerConfig {
  std::size_t port = 0;
  u64 drain_cycles = 1;  // cycles per packet drained
  sim::SimTime clock_period = 2;
};

class PacketConsumer : public sim::Module {
 public:
  PacketConsumer(sim::Kernel& kernel, RouterModule& router,
                 ConsumerConfig config);

  [[nodiscard]] u64 received() const { return received_; }
  [[nodiscard]] u64 integrity_failures() const { return integrity_failures_; }
  [[nodiscard]] u64 misrouted() const { return misrouted_; }

 private:
  void consume_loop();

  RouterModule& router_;
  ConsumerConfig config_;
  u64 received_ = 0;
  u64 integrity_failures_ = 0;
  u64 misrouted_ = 0;
};

}  // namespace vhp::router
