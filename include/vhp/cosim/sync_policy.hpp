// SyncPolicy — the one knob-set for timing synchronization (ISSUE 6).
//
// Folds the previously scattered sync knobs (t_sync / per-node overrides /
// watchdog / eviction) together with the adaptive lookahead mode into one
// fluent value type shared by the two-party CosimKernel and the N-party
// fabric::SyncCoordinator.
//
// Fixed mode (the paper's T_sync): every node is granted `quantum` cycles
// per CLOCK_TICK at a fixed cadence.
//
// Adaptive mode (DEVS-style time advance / FMI variable-step master): each
// TIME_ACK may carry the sender's *lookahead* — the earliest future master
// cycle at which the board can next interact (next RTOS timer expiry, or
// "idle until data arrives" = unbounded). The master then grants
//
//     max(min_quantum, min(lookahead - cycle, max_quantum))
//
// instead of the fixed quantum. The conservative deadlock-freedom argument
// is untouched: a node still never observes simulated time beyond its
// grant, and a *wrong* (too large) lookahead can only cost accuracy —
// bounded by max_quantum — never liveness, because the node still consumes
// its grant and acks. Hence max_quantum defaults finite.
#pragma once

#include <algorithm>
#include <chrono>
#include <optional>
#include <vector>

#include "vhp/common/status.hpp"
#include "vhp/common/types.hpp"

namespace vhp::cosim {

class SyncPolicy {
 public:
  /// TIME_ACK lookahead value meaning "idle until data arrives": the board
  /// has no future event of its own, the master may grant up to max_quantum.
  static constexpr u64 kUnboundedLookahead = ~u64{0};
  /// Default cap when max_quantum is left 0: 64x the node's fixed quantum.
  static constexpr u64 kDefaultMaxQuantumFactor = 64;

  // ----- fluent setters -----

  /// Default grant size in HW clock cycles (the paper's T_sync).
  SyncPolicy& quantum(u64 cycles) {
    quantum_ = cycles;
    return *this;
  }
  /// Per-node fixed-quantum override (N-party fabric); 0 = the default.
  SyncPolicy& node_quantum(std::size_t node, u64 cycles) {
    if (overrides_.size() <= node) overrides_.resize(node + 1, 0);
    overrides_[node] = cycles;
    return *this;
  }
  /// Lookahead-driven variable grants (see the grant formula above).
  SyncPolicy& adaptive(bool on = true) {
    adaptive_ = on;
    return *this;
  }
  /// Smallest adaptive grant; 0 = the node's fixed quantum. A busy board
  /// (lookahead "now") keeps syncing at this pace.
  SyncPolicy& min_quantum(u64 cycles) {
    min_quantum_ = cycles;
    return *this;
  }
  /// Largest adaptive grant — the accuracy bound on a sleeping board;
  /// 0 = kDefaultMaxQuantumFactor x the node's fixed quantum.
  SyncPolicy& max_quantum(u64 cycles) {
    max_quantum_ = cycles;
    return *this;
  }
  /// Wall-clock bound on one barrier gather; zero disables the watchdog.
  SyncPolicy& watchdog(std::chrono::milliseconds bound) {
    watchdog_ = bound;
    return *this;
  }
  /// Evict a node after this many consecutive watchdog misses; 0 fail-fast.
  SyncPolicy& evict_after(u32 misses) {
    evict_after_misses_ = misses;
    return *this;
  }

  // ----- getters -----

  [[nodiscard]] u64 quantum() const { return quantum_; }
  /// Fixed quantum of `node` after overrides.
  [[nodiscard]] u64 node_quantum(std::size_t node) const {
    if (node < overrides_.size() && overrides_[node] != 0) {
      return overrides_[node];
    }
    return quantum_;
  }
  [[nodiscard]] const std::vector<u64>& overrides() const { return overrides_; }
  [[nodiscard]] bool is_adaptive() const { return adaptive_; }
  [[nodiscard]] u64 min_quantum() const { return min_quantum_; }
  [[nodiscard]] u64 max_quantum() const { return max_quantum_; }
  [[nodiscard]] std::chrono::milliseconds watchdog() const { return watchdog_; }
  [[nodiscard]] u32 evict_after_misses() const { return evict_after_misses_; }

  /// Effective [min, max] clamp for `node` with the documented defaults
  /// resolved; max is never below min.
  [[nodiscard]] std::pair<u64, u64> clamp_for(std::size_t node) const {
    const u64 fixed = std::max<u64>(1, node_quantum(node));
    const u64 lo = min_quantum_ != 0 ? min_quantum_ : fixed;
    u64 hi = max_quantum_;
    if (hi == 0) {
      // Default cap, bounded to the u32 CLOCK_TICK grant field.
      constexpr u64 kTickMax = 0xffffffffu;
      hi = fixed > kTickMax / kDefaultMaxQuantumFactor
               ? kTickMax
               : fixed * kDefaultMaxQuantumFactor;
    }
    return {lo, std::max(lo, hi)};
  }

  /// Cycles to grant `node` at master cycle `cycle` given the lookahead from
  /// its last TIME_ACK (nullopt = a v1 ack, no lookahead advertised). The
  /// fixed quantum when not adaptive or the node did not advertise;
  /// otherwise max(min_quantum, min(lookahead - cycle, max_quantum)).
  [[nodiscard]] u64 grant(std::size_t node, u64 cycle,
                          std::optional<u64> lookahead) const {
    const u64 fixed = std::max<u64>(1, node_quantum(node));
    if (!adaptive_ || !lookahead.has_value()) return fixed;
    const auto [lo, hi] = clamp_for(node);
    const u64 ahead = *lookahead > cycle ? *lookahead - cycle : 0;
    return std::max(lo, std::min(ahead, hi));
  }

  /// Rejects a zero quantum (any node), min > max, grants that overflow the
  /// u32 n_ticks field of CLOCK_TICK, and eviction without a watchdog.
  [[nodiscard]] Status validate(std::size_t n_nodes = 1) const;

 private:
  u64 quantum_ = 1000;
  std::vector<u64> overrides_;
  bool adaptive_ = false;
  u64 min_quantum_ = 0;
  u64 max_quantum_ = 0;
  std::chrono::milliseconds watchdog_{10000};
  u32 evict_after_misses_ = 0;
};

}  // namespace vhp::cosim
