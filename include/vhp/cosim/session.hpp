// One-stop wiring of a complete co-simulation: the HDL kernel on the calling
// thread, the virtual board on its own host thread, connected by either the
// in-process transport (deterministic unit tests) or real TCP over loopback
// (the paper's medium; used by the benchmarks).
#pragma once

#include <memory>

#include "vhp/board/board.hpp"
#include "vhp/cosim/cosim_kernel.hpp"
#include "vhp/net/latency.hpp"

namespace vhp::cosim {

enum class TransportKind { kInProc, kTcp };

struct SessionConfig {
  CosimConfig cosim{};
  board::BoardConfig board{};
  TransportKind transport = TransportKind::kInProc;
  /// Optional emulated link latency on every channel (see net/latency.hpp).
  /// The paper's physical medium (Ethernet + eCos IP stack) is much slower
  /// than loopback; absolute-overhead experiments emulate that here.
  net::LinkEmulationConfig link_emulation{};

  /// Convenience: configure the matching untimed baseline (no sync traffic,
  /// free-running board) used as Figure 6's denominator.
  void set_untimed() {
    cosim.timed = false;
    board.free_running = true;
  }
};

class CosimSession {
 public:
  explicit CosimSession(SessionConfig config);
  ~CosimSession();

  CosimSession(const CosimSession&) = delete;
  CosimSession& operator=(const CosimSession&) = delete;

  /// The simulation side. Build the HDL model against hw().kernel() and
  /// hw().registry() before calling start_board()/run_cycles().
  ///
  /// Lifetime rule (as in SystemC): everything built against the kernel —
  /// modules, signals, events, driver ports — must be destroyed BEFORE the
  /// session, i.e. declared after it.
  [[nodiscard]] CosimKernel& hw() { return *hw_; }

  /// The board side. Configure applications and DSRs before start_board().
  [[nodiscard]] board::Board& board() { return host_->board(); }

  /// Boots the board host thread.
  void start_board();

  /// Runs the co-simulation for `cycles` HW clock cycles.
  Status run_cycles(u64 cycles) { return hw_->run_cycles(cycles); }

  /// Sends SHUTDOWN and joins the board thread.
  void finish();

 private:
  std::unique_ptr<CosimKernel> hw_;
  std::unique_ptr<board::BoardHost> host_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace vhp::cosim
