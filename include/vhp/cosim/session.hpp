// One-stop wiring of a complete co-simulation: the HDL kernel on the calling
// thread, the virtual board on its own host thread, connected by either the
// in-process transport (deterministic unit tests) or real TCP over loopback
// (the paper's medium; used by the benchmarks).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "vhp/board/board.hpp"
#include "vhp/cosim/cosim_kernel.hpp"
#include "vhp/fault/plan.hpp"
#include "vhp/fault/reliable.hpp"
#include "vhp/net/batching.hpp"
#include "vhp/net/latency.hpp"
#include "vhp/obs/hub.hpp"

namespace vhp::cosim {

enum class TransportKind {
  kInProc,
  kTcp,
  /// Shared-memory SPSC rings (net/shm_ring.hpp): no syscall on the data
  /// path, eventfd doorbells for readiness — the svc session server's
  /// fast path (DESIGN.md §14).
  kShm,
};

struct SessionConfig {
  CosimConfig cosim{};
  board::BoardConfig board{};
  TransportKind transport = TransportKind::kInProc;
  /// Per-quantum frame batching (net/batching.hpp, DESIGN.md §14): DATA
  /// and INT frames coalesce into one vectored send flushed at the
  /// CLOCK boundary. Timed mode only; incompatible with recovery
  /// (validate() enforces both). Recordings stay bit-identical — the
  /// batcher sits below every decorator.
  bool batch_frames = false;
  net::BatchingConfig batching{};
  /// Optional emulated link latency on every channel (see net/latency.hpp).
  /// The paper's physical medium (Ethernet + eCos IP stack) is much slower
  /// than loopback; absolute-overhead experiments emulate that here.
  net::LinkEmulationConfig link_emulation{};
  /// Deterministic fault injection on the hw side of the link (see
  /// vhp/fault/plan.hpp); an empty plan is zero-hop. A plan that can lose
  /// or mutate frames requires recovery.enabled.
  fault::FaultPlan fault_plan{};
  /// Link-level recovery (sequence numbers, ack/retransmit, reconnect) on
  /// both sides of the link — see vhp/fault/reliable.hpp.
  fault::RecoveryConfig recovery{};
  /// Observability (vhp::obs): off by default — the costly instruments
  /// (timeline tracing, stall profiling, per-frame link accounting) are
  /// opt-in; plain metric counters always run.
  obs::ObsConfig obs{};
  /// Where post-mortem flight-recorder dumps land when obs.record is on:
  /// "<prefix>.{hw,board}.jsonl" on an error Status from run_cycles(), a
  /// deadline timeout, or a fatal signal (install_postmortem_signal_handler).
  /// Empty disables automatic dumping.
  std::string postmortem_prefix = "vhp-postmortem";

  /// Convenience: configure the matching untimed baseline (no sync traffic,
  /// free-running board) used as Figure 6's denominator.
  void set_untimed() {
    cosim.timed = false;
    board.free_running = true;
  }

  /// Full consistency check: CosimConfig::validate() plus the cross-layer
  /// rules (timed kernel <-> budgeted board, nonzero RTOS timing divisors).
  /// CosimSession's constructor enforces this by throwing
  /// std::invalid_argument with the status message; call it yourself first
  /// to handle misconfiguration as a Status instead.
  [[nodiscard]] Status validate() const;
};

/// Fluent construction of a validated SessionConfig — the examples' way of
/// spelling the paper's experimental knobs:
///
///   auto cfg = SessionConfigBuilder{}
///                  .tcp()
///                  .t_sync(1000)
///                  .cycles_per_tick(10)
///                  .observability()
///                  .build_or_throw();
class SessionConfigBuilder {
 public:
  SessionConfigBuilder& transport(TransportKind kind) {
    config_.transport = kind;
    return *this;
  }
  SessionConfigBuilder& tcp() { return transport(TransportKind::kTcp); }
  SessionConfigBuilder& inproc() { return transport(TransportKind::kInProc); }
  SessionConfigBuilder& shm() { return transport(TransportKind::kShm); }

  /// Per-quantum frame batching on DATA/INT (timed sessions only; see
  /// SessionConfig::batch_frames).
  SessionConfigBuilder& batching(bool on = true) {
    config_.batch_frames = on;
    return *this;
  }

  SessionConfigBuilder& t_sync(u64 cycles) {
    config_.cosim.t_sync = cycles;
    return *this;
  }
  /// The unified knob-set (CosimConfig::sync); wins over t_sync()
  /// wholesale. An adaptive policy automatically configures the board to
  /// advertise its lookahead (wire v2 acks).
  SessionConfigBuilder& sync(SyncPolicy policy) {
    config_.cosim.sync = std::move(policy);
    return *this;
  }
  SessionConfigBuilder& clock_period(sim::SimTime period) {
    config_.cosim.clock_period = period;
    return *this;
  }
  SessionConfigBuilder& data_poll_interval(u64 cycles) {
    config_.cosim.data_poll_interval = cycles;
    return *this;
  }
  /// Runs the master kernel's evaluation phase on `workers` lanes
  /// (including the calling thread); 0 = serial. Bit-identical results
  /// either way — see sim::Kernel::set_parallel.
  SessionConfigBuilder& parallel(u64 workers) {
    config_.cosim.parallel_workers = workers;
    return *this;
  }
  SessionConfigBuilder& untimed() {
    config_.set_untimed();
    return *this;
  }

  SessionConfigBuilder& cycles_per_tick(u64 cycles) {
    config_.board.rtos.cycles_per_tick = cycles;
    return *this;
  }
  SessionConfigBuilder& timeslice_ticks(u64 ticks) {
    config_.board.rtos.timeslice_ticks = ticks;
    return *this;
  }
  SessionConfigBuilder& cycles_per_sim_cycle(u64 cycles) {
    config_.board.cycles_per_sim_cycle = cycles;
    return *this;
  }
  SessionConfigBuilder& dev_costs(u64 read_cycles, u64 write_cycles) {
    config_.board.dev_read_cost = read_cycles;
    config_.board.dev_write_cost = write_cycles;
    return *this;
  }

  /// Many-core board (DESIGN.md §13): M virtual cores under the SMP kernel.
  /// M > 1 requires a memory hierarchy — pair with memory(); validation
  /// rejects the combination otherwise.
  SessionConfigBuilder& cores(u32 m) {
    config_.board.rtos.cores = m;
    return *this;
  }
  /// Attaches a memory hierarchy (per-core L1 I/D caches, banked shared
  /// memory) to the board; ISS instruction cost becomes pipelined.
  SessionConfigBuilder& memory(mem::MemConfig config) {
    config_.board.memory = config;
    return *this;
  }

  SessionConfigBuilder& link_latency(std::chrono::microseconds one_way) {
    config_.link_emulation.latency = one_way;
    return *this;
  }

  SessionConfigBuilder& fault_plan(fault::FaultPlan plan) {
    config_.fault_plan = std::move(plan);
    return *this;
  }
  SessionConfigBuilder& recovery(fault::RecoveryConfig recovery_config) {
    config_.recovery = recovery_config;
    return *this;
  }
  SessionConfigBuilder& recover(bool on = true) {
    config_.recovery.enabled = on;
    return *this;
  }

  SessionConfigBuilder& observability(bool on = true) {
    config_.obs.enabled = on;
    return *this;
  }
  SessionConfigBuilder& max_trace_events(std::size_t n) {
    config_.obs.max_trace_events = n;
    return *this;
  }

  /// Flight recorder (independent of observability()): ring-only frame
  /// capture on all three ports of both sides. The default payload cap is
  /// raised to the frame-size maximum so recordings stay replayable.
  SessionConfigBuilder& record(bool on = true) {
    config_.obs.record.enabled = on;
    if (on) config_.obs.record.max_payload_bytes = 1u << 16;
    return *this;
  }
  SessionConfigBuilder& record_ring(std::size_t frames) {
    config_.obs.record.ring_frames = frames;
    return *this;
  }
  SessionConfigBuilder& record_payload_bytes(std::size_t bytes) {
    config_.obs.record.max_payload_bytes = bytes;
    return *this;
  }
  SessionConfigBuilder& postmortem_prefix(std::string prefix) {
    config_.postmortem_prefix = std::move(prefix);
    return *this;
  }

  /// Validated result: the config, or the first rule it breaks.
  [[nodiscard]] Result<SessionConfig> build() const {
    Status s = config_.validate();
    if (!s.ok()) return s;
    return config_;
  }

  /// For mainline example/benchmark code where misconfiguration is fatal.
  [[nodiscard]] SessionConfig build_or_throw() const;

 private:
  SessionConfig config_{};
};

class CosimSession {
 public:
  /// Throws std::invalid_argument if `config.validate()` fails.
  explicit CosimSession(SessionConfig config);
  ~CosimSession();

  CosimSession(const CosimSession&) = delete;
  CosimSession& operator=(const CosimSession&) = delete;

  /// The simulation side. Build the HDL model against hw().kernel() and
  /// hw().registry() before calling start_board()/run_cycles().
  ///
  /// Lifetime rule (as in SystemC): everything built against the kernel —
  /// modules, signals, events, driver ports — must be destroyed BEFORE the
  /// session, i.e. declared after it.
  [[nodiscard]] CosimKernel& hw() { return *hw_; }

  /// The board side. Configure applications and DSRs before start_board().
  [[nodiscard]] board::Board& board() { return host_->board(); }

  /// The session-wide observability hub: metrics always, timeline tracing
  /// and stall profiling when SessionConfig::obs.enabled.
  [[nodiscard]] obs::Hub& obs() { return *hub_; }

  /// The compiled fault schedule; nullptr when the plan is unarmed.
  [[nodiscard]] fault::FaultSchedule* fault_schedule() {
    return schedule_.get();
  }

  /// Dumps all metrics (counters/gauges/histograms, both sides of the link)
  /// as one JSON object. Call after finish() for exact totals.
  Status write_metrics_json(const std::string& path) {
    return hub_->write_metrics_json(path);
  }
  /// Dumps the recorded timeline as Chrome trace_event JSON — open it in
  /// chrome://tracing or https://ui.perfetto.dev.
  Status write_trace_json(const std::string& path) {
    return hub_->write_trace_json(path);
  }

  /// Boots the board host thread.
  void start_board();

  /// Runs the co-simulation for `cycles` HW clock cycles. A non-OK Status
  /// (transport failure, deadline timeout, protocol error) triggers an
  /// automatic post-mortem dump of both flight-recorder rings (see
  /// SessionConfig::postmortem_prefix) before it is returned.
  Status run_cycles(u64 cycles);

  /// Sends SHUTDOWN and joins the board thread.
  void finish();

  /// Writes both sides' flight-recorder rings as replayable recordings:
  /// "<prefix>.hw.vhprec" and "<prefix>.board.vhprec" (binary). The standard
  /// config-echo tags (t_sync, poll interval, RTOS timing) are embedded so a
  /// replay run can rebuild the matching lone-side configuration; `tags`
  /// adds workload-specific ones on top. No-op unless obs.record is enabled.
  Status write_recordings(
      const std::string& prefix,
      const std::map<std::string, std::string>& tags = {});

  /// Flushes the last N frames per side to "<postmortem_prefix>.<side>.jsonl"
  /// with a "reason" tag. Called automatically on run_cycles() errors;
  /// callable directly for watchdog-style tooling.
  void dump_postmortem(const std::string& reason);

  /// Best-effort crash dumps: on SIGINT/SIGTERM the most recently
  /// constructed live session flushes its rings, then the default handler
  /// runs. (File I/O from a signal handler is not strictly async-signal-safe
  /// — acceptable for a debug aid that fires on the way down.)
  static void install_postmortem_signal_handler();

 private:
  [[nodiscard]] std::map<std::string, std::string> config_tags() const;

  SessionConfig config_;
  std::shared_ptr<fault::FaultSchedule> schedule_;  // null when unarmed
  std::unique_ptr<obs::Hub> hub_;  // outlives both sides, they hold Hub*
  std::unique_ptr<CosimKernel> hw_;
  std::unique_ptr<board::BoardHost> host_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace vhp::cosim
