// The modified simulation engine: the paper's driver_simulate() (Section 5.2).
//
// Wraps a sim::Kernel and drives it cycle by cycle while servicing the three
// co-simulation channels:
//   * before each clock cycle, the DATA port is drained (driver writes are
//     delivered to DriverIn ports, read requests answered from DriverOut);
//   * after each cycle, watched interrupt lines are edge-sampled and
//     INT_RAISE packets emitted;
//   * every T_sync cycles, a CLOCK_TICK packet grants the board T_sync
//     cycles of execution and the kernel blocks until the TIME_ACK — while
//     still answering DATA traffic, so a board thread blocked mid-quantum on
//     a device read can never deadlock the session.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "vhp/common/log.hpp"
#include "vhp/common/status.hpp"
#include "vhp/cosim/driver_port.hpp"
#include "vhp/cosim/sync_policy.hpp"
#include "vhp/net/channel.hpp"
#include "vhp/obs/hub.hpp"
#include "vhp/sim/kernel.hpp"
#include "vhp/sim/signal.hpp"

namespace vhp::cosim {

struct CosimConfig {
  /// Synchronization interval in HW clock cycles (the paper's T_sync).
  /// Deprecated shim: honored only while `sync` is unset.
  u64 t_sync = 1000;
  /// The unified synchronization policy (ISSUE 6). When set it wins
  /// wholesale over the legacy `t_sync` field and may enable adaptive
  /// lookahead mode (pair with board::BoardConfig::advertise_lookahead;
  /// CosimSession wires that automatically).
  std::optional<SyncPolicy> sync;
  /// Simulation time units per clock cycle (posedge every period).
  sim::SimTime clock_period = 2;
  /// When true, run timed: exchange CLOCK_TICK/TIME_ACK. When false the
  /// simulation free-runs (the paper's untimed baseline, the denominator of
  /// Figure 6's overhead ratio) — the board then runs unsynchronized.
  bool timed = true;
  /// Send SHUTDOWN on finish() so the board's run() returns.
  bool shutdown_on_finish = true;
  /// Poll the DATA port every this many cycles (1 = the paper's
  /// driver_simulate, which checks for data each simulation cycle).
  /// Larger values amortize the non-blocking socket check — the dominant
  /// per-cycle cost of an otherwise idle co-simulation — at the price of
  /// coarser driver-write delivery (an ablation knob; see
  /// bench/abl_data_poll).
  u64 data_poll_interval = 1;
  /// Evaluation lanes of the deterministic parallel kernel (including the
  /// calling thread); 0 = serial (default, byte-identical legacy path).
  /// Results are bit-identical across all values — see
  /// sim::Kernel::set_parallel and sim/partition.hpp for the model
  /// contract.
  u64 parallel_workers = 0;

  /// The policy in effect: `sync` when set, else the legacy fields
  /// repackaged (fixed mode at `t_sync`).
  [[nodiscard]] SyncPolicy resolved_sync() const {
    if (sync.has_value()) return *sync;
    return SyncPolicy{}.quantum(t_sync);
  }

  /// Rejects configurations that would divide by zero or stall the protocol
  /// (t_sync == 0 in timed mode, zero clock_period / data_poll_interval,
  /// an invalid `sync` policy).
  [[nodiscard]] Status validate() const;
};

class CosimKernel {
 public:
  /// `hub` is the session's observability hub; pass nullptr (standalone
  /// wiring, unit tests) to get a private hub with tracing disabled —
  /// metric counters still run, they back stats().
  CosimKernel(net::CosimLink link, CosimConfig config,
              obs::Hub* hub = nullptr);
  ~CosimKernel();

  CosimKernel(const CosimKernel&) = delete;
  CosimKernel& operator=(const CosimKernel&) = delete;

  [[nodiscard]] sim::Kernel& kernel() { return kernel_; }
  [[nodiscard]] sim::Clock& clock() { return clock_; }
  [[nodiscard]] DriverRegistry& registry() { return registry_; }
  [[nodiscard]] const CosimConfig& config() const { return config_; }
  [[nodiscard]] obs::Hub& obs() { return *hub_; }

  /// Registers `line` as a device interrupt source: a rising edge sampled
  /// at a cycle boundary sends INT_RAISE(vector) to the board.
  void watch_interrupt(sim::BoolSignal& line, u32 vector);

  /// Waits for the board's initial "frozen" TIME_ACK (timed mode only).
  /// Must be called once before the first run_cycles().
  Status handshake(std::optional<std::chrono::milliseconds> timeout =
                       std::chrono::milliseconds{10000});

  /// The paper's driver_simulate(): runs `cycles` HW clock cycles of the
  /// model with data service, interrupt propagation and timing sync.
  /// Fails with kInvalidArgument if the config did not validate.
  Status run_cycles(u64 cycles);

  /// Non-blocking variant for event-loop hosting (svc::SessionHost): runs
  /// up to `max_cycles`, but instead of spinning for the TIME_ACK (or the
  /// handshake) it returns with *blocked=true when the board owes a frame
  /// that has not arrived. *ran reports cycles completed this call. The
  /// protocol state (mid-sync vs running) persists across calls — resume
  /// by calling pump() again once the link shows readiness. A session
  /// uses either run_cycles() or pump(), not both.
  Status pump(u64 max_cycles, u64* ran, bool* blocked);

  /// True while a CLOCK_TICK is out and its TIME_ACK has not arrived
  /// (pump() mode only — the blocking path never exposes this state).
  [[nodiscard]] bool awaiting_ack() const { return awaiting_ack_; }

  /// Readiness fds of the hw side of the link (DATA/INT/CLOCK rx), for
  /// event-loop registration; channels without one are omitted.
  [[nodiscard]] std::vector<int> readable_fds();

  /// Current cycle count (completed cycles).
  [[nodiscard]] u64 cycle() const { return cycle_; }

  /// The policy in effect and the adaptive state: the cycle of the next
  /// CLOCK_TICK and the lookahead from the board's latest TIME_ACK
  /// (nullopt before the handshake or against a v1 board).
  [[nodiscard]] const SyncPolicy& sync_policy() const { return policy_; }
  [[nodiscard]] u64 next_sync() const { return next_sync_; }
  [[nodiscard]] std::optional<u64> board_lookahead() const {
    return board_lookahead_;
  }

  /// Barrier rounds stamped so far (wire v3; 0 unless the hub's timeline is
  /// enabled — round stamping is what grows the CLOCK/TIME_ACK frames, so
  /// it is gated on the timeline switch to keep default runs byte-exact).
  [[nodiscard]] u64 rounds() const { return round_; }

  /// Ends the co-simulation (sends SHUTDOWN if configured).
  void finish();

  /// Compatibility view over the metrics registry (the counters live under
  /// "cosim.*"); returned by value as a snapshot.
  struct Stats {
    u64 syncs = 0;
    u64 data_writes = 0;
    u64 data_reads = 0;
    u64 interrupts_sent = 0;
    u64 acks_received = 0;
  };
  [[nodiscard]] Stats stats() const {
    return Stats{syncs_.value(), data_writes_.value(), data_reads_.value(),
                 interrupts_sent_.value(), acks_received_.value()};
  }

 private:
  struct IntWatch {
    sim::BoolSignal* line;
    u32 vector;
    bool prev = false;
  };

  /// Drains pending DATA frames; returns first hard error.
  Status service_data_port();
  Status handle_data_msg(const net::Message& msg);
  /// Sends CLOCK_TICK and blocks for TIME_ACK, servicing DATA meanwhile.
  Status sync_with_board();
  /// Flushes DATA/INT and emits the CLOCK_TICK (shared by the blocking
  /// and pump() paths; spans bookkeeping lands in accept_ack).
  Status send_tick();
  /// Validates and applies a received TIME_ACK (grant policy, spans).
  Status accept_ack(const net::Message& msg);
  Status sample_interrupts();
  /// Captures a TIME_ACK's lookahead (adaptive state + cosim.lookahead_acks).
  void note_ack(const net::TimeAck& ack);

  net::CosimLink link_;
  CosimConfig config_;
  Status config_status_;
  Logger log_{"cosim"};

  // Declared before the counter references: init order matters.
  std::unique_ptr<obs::Hub> owned_hub_;
  obs::Hub* hub_;
  obs::Counter& syncs_;
  obs::Counter& data_writes_;
  obs::Counter& data_reads_;
  obs::Counter& interrupts_sent_;
  obs::Counter& acks_received_;
  obs::Counter& lookahead_acks_;
  obs::LatencyHistogram& sync_rtt_ns_;
  obs::LatencyHistogram& grant_cycles_;
  obs::SpanSink& spans_;  // timeline ring "cosim" (two-party spans)

  sim::Kernel kernel_;
  sim::Clock clock_;
  DriverRegistry registry_;
  std::vector<IntWatch> watches_;

  SyncPolicy policy_;           // config_.resolved_sync()
  u64 last_granted_ = 0;        // cycle of the previous CLOCK_TICK
  u64 next_sync_ = 0;           // cycle of the next CLOCK_TICK
  std::optional<u64> board_lookahead_;  // from the latest TIME_ACK

  u64 cycle_ = 0;
  u64 round_ = 0;  // wire-v3 round id of the latest CLOCK_TICK
  bool handshaken_ = false;
  bool finished_ = false;
  /// pump() protocol state: a CLOCK_TICK is in flight, TIME_ACK pending.
  bool awaiting_ack_ = false;
  /// Span bookkeeping across the send_tick/accept_ack split.
  u64 sync_span_start_ = 0;
  u64 tick_sent_ns_ = 0;
  /// Per-lane busy_ns already folded into the sim.worker*.busy_ns
  /// histograms (the collector records deltas between metric dumps).
  std::vector<u64> lane_busy_collected_;
};

}  // namespace vhp::cosim
