// Value <-> wire-bytes codec for driver port payloads.
//
// Driver ports carry typed values between the board's device driver and the
// HDL model; this trait defines their serialized form. Integral types are
// little-endian fixed width; Bytes pass through verbatim (the router's
// packets travel as Bytes and are packed by the router module itself).
#pragma once

#include <concepts>

#include "vhp/common/bytes.hpp"

namespace vhp::cosim {

template <typename T>
struct DriverCodec;

template <std::unsigned_integral T>
struct DriverCodec<T> {
  static Bytes encode(const T& value) {
    Bytes out;
    ByteWriter w{out};
    if constexpr (sizeof(T) == 1) {
      w.u8v(value);
    } else if constexpr (sizeof(T) == 2) {
      w.u16v(value);
    } else if constexpr (sizeof(T) == 4) {
      w.u32v(value);
    } else {
      w.u64v(value);
    }
    return out;
  }

  static bool decode(std::span<const u8> data, T& out) {
    ByteReader r{data};
    if constexpr (sizeof(T) == 1) {
      out = r.u8v();
    } else if constexpr (sizeof(T) == 2) {
      out = r.u16v();
    } else if constexpr (sizeof(T) == 4) {
      out = r.u32v();
    } else {
      out = static_cast<T>(r.u64v());
    }
    return r.ok() && r.at_end();
  }
};

template <>
struct DriverCodec<Bytes> {
  static Bytes encode(const Bytes& value) { return value; }
  static bool decode(std::span<const u8> data, Bytes& out) {
    out.assign(data.begin(), data.end());
    return true;
  }
};

}  // namespace vhp::cosim
