// Driver ports: the paper's driver_in / driver_out classes (Section 5.2).
//
// A DriverIn<T> is a device-addressable input of the HDL model: a DATA_WRITE
// frame from the board materializes as a value change plus a notification of
// the port's data event — any process made sensitive to that event is a
// *driver process* in the paper's terminology. A DriverOut<T> is a
// device-addressable output: a DATA_READ_REQ from the board is answered with
// the port's current value.
//
// Unlike a Signal, a DriverIn fires on EVERY delivered write (two equal
// packets back-to-back are two deliveries, not one), matching "a driver
// process will be triggered when a new data is present on a driver_in port".
#pragma once

#include <cassert>
#include <functional>
#include <map>
#include <string>

#include "vhp/common/bytes.hpp"
#include "vhp/common/status.hpp"
#include "vhp/cosim/driver_codec.hpp"
#include "vhp/net/channel.hpp"
#include "vhp/net/message.hpp"
#include "vhp/sim/event.hpp"
#include "vhp/sim/kernel.hpp"

namespace vhp::cosim {

/// Address-indexed table of driver endpoints; owned by the CosimKernel,
/// consulted when DATA frames arrive.
class DriverRegistry {
 public:
  using WriteHandler = std::function<Status(std::span<const u8>)>;
  using ReadHandler = std::function<Bytes()>;

  void register_write(u32 address, WriteHandler handler);
  void register_read(u32 address, ReadHandler handler);
  void unregister(u32 address);

  /// Dispatches an incoming DATA_WRITE. Unknown addresses are an error
  /// (the board wrote to a hole in the device's address map).
  Status deliver_write(u32 address, std::span<const u8> data);

  /// Serves a DATA_READ_REQ. max_bytes truncates oversized responses.
  Result<Bytes> serve_read(u32 address, u32 max_bytes);

  [[nodiscard]] u64 writes_delivered() const { return writes_; }
  [[nodiscard]] u64 reads_served() const { return reads_; }

 private:
  struct Entry {
    WriteHandler write;
    ReadHandler read;
  };
  std::map<u32, Entry> endpoints_;
  u64 writes_ = 0;
  u64 reads_ = 0;
};

/// Dispatches one DATA-port message against `registry`: DATA_WRITE →
/// deliver_write, DATA_READ_REQ → serve_read answered with a DATA_READ_RESP
/// on `reply`; anything else is a protocol error. The one DATA-service
/// routine shared by the two-party CosimKernel and the N-node fabric (each
/// fabric node has its own registry, so identical device addresses across
/// boards never collide).
Status serve_data_message(DriverRegistry& registry, net::Channel& reply,
                          const net::Message& msg);

template <typename T>
class DriverIn {
 public:
  DriverIn(sim::Kernel& kernel, DriverRegistry& registry, std::string name,
           u32 address)
      : name_(std::move(name)), address_(address), registry_(registry),
        data_event_(kernel, name_ + ".data") {
    registry_.register_write(address_, [this](std::span<const u8> raw) {
      T value{};
      if (!DriverCodec<T>::decode(raw, value)) {
        return Status{StatusCode::kInvalidArgument,
                      "undecodable driver write to " + name_};
      }
      value_ = std::move(value);
      ++write_count_;
      data_event_.notify_delta();
      return Status::Ok();
    });
  }

  ~DriverIn() { registry_.unregister(address_); }

  DriverIn(const DriverIn&) = delete;
  DriverIn& operator=(const DriverIn&) = delete;

  [[nodiscard]] const T& read() const { return value_; }
  [[nodiscard]] u32 address() const { return address_; }
  [[nodiscard]] u64 write_count() const { return write_count_; }

  /// Sensitivity target for driver processes.
  [[nodiscard]] sim::Event& data_written_event() { return data_event_; }

 private:
  std::string name_;
  u32 address_;
  DriverRegistry& registry_;
  sim::Event data_event_;
  T value_{};
  u64 write_count_ = 0;
};

template <typename T>
class DriverOut {
 public:
  DriverOut(DriverRegistry& registry, std::string name, u32 address)
      : name_(std::move(name)), address_(address), registry_(registry) {
    registry_.register_read(
        address_, [this] { return DriverCodec<T>::encode(value_); });
  }

  ~DriverOut() { registry_.unregister(address_); }

  DriverOut(const DriverOut&) = delete;
  DriverOut& operator=(const DriverOut&) = delete;

  /// HDL-model side: publish a new value for the board to read.
  void write(T value) { value_ = std::move(value); }

  [[nodiscard]] const T& read() const { return value_; }
  [[nodiscard]] u32 address() const { return address_; }

 private:
  std::string name_;
  u32 address_;
  DriverRegistry& registry_;
  T value_{};
};

}  // namespace vhp::cosim
