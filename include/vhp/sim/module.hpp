// Module: named container of processes, the structural unit of an HDL model
// (sc_module equivalent). Derive, create ports/signals as members, and
// register processes in the constructor:
//
//   struct Counter : sim::Module {
//     sim::BoolInPort clk;
//     sim::Signal<vhp::u32>& count;
//     Counter(sim::Kernel& k)
//         : Module(k, "counter"), count(make_signal<vhp::u32>("count")) {
//       method("tick", [this] { count.write(count.read() + 1); })
//           .sensitive(clk.posedge_event())
//           .dont_initialize();
//     }
//   };
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "vhp/sim/process.hpp"
#include "vhp/sim/signal.hpp"

namespace vhp::sim {

class Kernel;

class Module {
 public:
  Module(Kernel& kernel, std::string name);
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Kernel& kernel() const { return kernel_; }

  /// The island-affinity group all of this module's entities belong to.
  /// Modules that share mutable state outside of signals (e.g. a testbench
  /// whose traffic modules call into the router's FIFOs directly) must be
  /// merged with Kernel::co_locate before running the kernel in parallel.
  [[nodiscard]] std::uint32_t affinity_group() const { return affinity_; }

 protected:
  /// RAII: entities constructed while alive inherit this module's affinity
  /// group (used so processes/signals created mid-simulation still land in
  /// the owning module's island).
  class AffinityScope {
   public:
    explicit AffinityScope(const Module& module);
    ~AffinityScope();
    AffinityScope(const AffinityScope&) = delete;
    AffinityScope& operator=(const AffinityScope&) = delete;

   private:
    Kernel& kernel_;
    std::uint32_t saved_group_;
    const void* saved_kernel_;
  };

  /// Registers an SC_METHOD-style process owned by the kernel.
  Process& method(const std::string& proc_name, std::function<void()> fn);

  /// Registers an SC_THREAD-style process owned by the kernel.
  Process& thread(const std::string& proc_name, std::function<void()> fn,
                  std::size_t stack_bytes = Fiber::kDefaultStackBytes);

  /// Creates a module-owned signal (convenience for internal signals).
  template <typename T>
  Signal<T>& make_signal(const std::string& sig_name, T init = T{}) {
    const AffinityScope scope{*this};
    auto sig = std::make_unique<Signal<T>>(kernel_, qualify(sig_name), init);
    auto& ref = *sig;
    owned_signals_.push_back(std::move(sig));
    return ref;
  }

  BoolSignal& make_bool_signal(const std::string& sig_name, bool init = false);

  [[nodiscard]] std::string qualify(const std::string& child) const {
    return name_ + "." + child;
  }

  Kernel& kernel_;

 private:
  std::string name_;
  std::uint32_t affinity_ = 0;
  std::vector<std::unique_ptr<SignalBase>> owned_signals_;
};

}  // namespace vhp::sim
