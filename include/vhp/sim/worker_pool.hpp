// Fixed-size worker pool for the parallel evaluation phase.
//
// The pool is latency-oriented: a delta cycle dispatches a handful of
// islands and waits for all of them, thousands of times per simulated
// millisecond, so workers spin briefly on the dispatch epoch before
// falling back to a condition variable. The calling thread participates as
// lane 0 — `WorkerPool(1)` therefore adds no threads at all and exercises
// the staging/commit machinery single-threaded.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vhp::sim {

class WorkerPool {
 public:
  /// `lanes` = total parallelism including the calling thread; spawns
  /// `lanes - 1` worker threads (lanes >= 1).
  explicit WorkerPool(unsigned lanes);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs task(i) for every i in [0, n) across all lanes; the calling
  /// thread participates and the call returns only when all n completed.
  /// Tasks must not throw (the kernel captures per-island errors itself).
  void run(std::size_t n, const std::function<void(std::size_t)>& task);

  [[nodiscard]] unsigned lanes() const {
    return static_cast<unsigned>(stats_.size());
  }

  /// Per-lane accounting (lane 0 = the calling thread). Written only by the
  /// owning lane during run(); read between runs.
  struct LaneStats {
    std::uint64_t busy_ns = 0;
    std::uint64_t items = 0;
  };
  [[nodiscard]] const std::vector<LaneStats>& stats() const { return stats_; }

 private:
  void worker_main(unsigned lane);
  void run_items(unsigned lane);

  std::vector<std::thread> threads_;
  std::vector<LaneStats> stats_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> epoch_{0};
  bool shutdown_ = false;

  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t n_items_ = 0;
  std::atomic<std::size_t> next_item_{0};
  std::atomic<unsigned> done_workers_{0};
};

}  // namespace vhp::sim
