// The discrete-event simulation kernel (the "simulate()" engine the paper
// modifies into "driver_simulate()" — see vhp/cosim/cosim_kernel.hpp for
// that modified loop).
//
// Scheduling model (SystemC-compatible):
//   1. evaluation phase: run every runnable process; immediate
//      notifications may make further processes runnable within the phase;
//   2. update phase: apply signal updates requested during evaluation;
//   3. delta notification phase: fire pending delta notifications, making
//      processes runnable for the next delta cycle;
//   4. when no delta activity remains, advance time to the earliest timed
//      notification.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "vhp/sim/event.hpp"
#include "vhp/sim/process.hpp"
#include "vhp/sim/signal.hpp"
#include "vhp/sim/time.hpp"

namespace vhp::sim {

class Kernel {
 public:
  Kernel();
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t delta_count() const { return delta_count_; }

  /// Runs for `duration` time units from now (processes all activity with
  /// timestamp <= now + duration, then sets now to exactly now + duration).
  void run(SimTime duration) { run_until(now_ + duration); }

  /// Runs until absolute time `t` (inclusive), then sets now == t.
  void run_until(SimTime t);

  /// Runs until no activity remains or stop() was requested.
  void run_to_completion();

  /// Earliest pending timed notification, if any.
  [[nodiscard]] std::optional<SimTime> next_event_time() const;

  /// True when no runnable process, delta or timed notification remains.
  [[nodiscard]] bool idle() const;

  /// Requests the run loop to return after the current delta cycle.
  /// Callable from inside a process.
  void stop() { stop_requested_ = true; }
  [[nodiscard]] bool stop_requested() const { return stop_requested_; }

  /// Livelock guard: a model whose processes keep notifying each other
  /// with delta notifications never lets the timestep advance (the classic
  /// zero-delay feedback bug; SystemC spins forever too). With a limit set,
  /// exceeding `limit` delta cycles within one timestep throws
  /// std::runtime_error naming the simulation time. 0 disables (default).
  void set_delta_limit(std::uint64_t limit) { delta_limit_ = limit; }

  /// --- registration API (used by Module; rarely called directly) ---
  Process& register_process(std::unique_ptr<Process> process);

  /// Statistics.
  [[nodiscard]] std::uint64_t process_count() const {
    return processes_.size();
  }

 private:
  friend class Event;
  friend class SignalBase;
  friend class Process;
  friend class MethodProcess;
  friend class ThreadProcess;

  void schedule_timed(Event* event, SimTime abs_time, std::uint64_t token);
  void schedule_delta(Event* event);
  /// Removes every queued reference to a dying event (Event destructor).
  void forget_event(Event* event);
  void request_update(SignalBase* signal);
  void make_runnable(Process* process);

  /// Runs initialization (first-run) of all processes not yet initialized.
  void initialize_new_processes();

  /// One full delta cycle (evaluate + update + delta notify).
  /// Returns false if there was nothing to do.
  bool do_delta_cycle();

  /// All delta cycles at the current time point.
  void exhaust_deltas();

  SimTime now_ = 0;
  std::uint64_t delta_count_ = 0;
  std::uint64_t delta_limit_ = 0;
  std::uint64_t timed_token_counter_ = 0;
  bool stop_requested_ = false;
  bool in_evaluation_ = false;

  struct TimedEntry {
    Event* event;
    std::uint64_t token;
  };
  std::multimap<SimTime, TimedEntry> timed_queue_;
  std::vector<Event*> delta_queue_;
  std::vector<Process*> runnable_;
  std::vector<SignalBase*> update_queue_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Process*> uninitialized_;
};

}  // namespace vhp::sim
