// The discrete-event simulation kernel (the "simulate()" engine the paper
// modifies into "driver_simulate()" — see vhp/cosim/cosim_kernel.hpp for
// that modified loop).
//
// Scheduling model (SystemC-compatible):
//   1. evaluation phase: run every runnable process; immediate
//      notifications may make further processes runnable within the phase;
//   2. update phase: apply signal updates requested during evaluation;
//   3. delta notification phase: fire pending delta notifications, making
//      processes runnable for the next delta cycle;
//   4. when no delta activity remains, advance time to the earliest timed
//      notification.
//
// Deterministic parallel mode (set_parallel): the evaluation phase fans
// islands (see vhp/sim/partition.hpp) out over a fixed worker pool, with
// per-island staging queues instead of the global ones; phases 2 and 3 then
// run single-threaded on the staged requests merged in canonical order
// (island id, then intra-island request order). Because islands only
// communicate through delta-delayed signals, every observable result —
// signal values, delta counts, virtual time, recordings — is bit-identical
// to the serial kernel regardless of worker count or OS scheduling.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "vhp/sim/event.hpp"
#include "vhp/sim/process.hpp"
#include "vhp/sim/signal.hpp"
#include "vhp/sim/time.hpp"

namespace vhp::sim {

class Partition;
class WorkerPool;
struct Island;

class Kernel {
 public:
  Kernel();
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t delta_count() const { return delta_count_; }

  /// Runs for `duration` time units from now (processes all activity with
  /// timestamp <= now + duration, then sets now to exactly now + duration).
  void run(SimTime duration) { run_until(now_ + duration); }

  /// Runs until absolute time `t` (inclusive), then sets now == t.
  void run_until(SimTime t);

  /// Runs until no activity remains or stop() was requested.
  void run_to_completion();

  /// Earliest pending timed notification, if any. Lazily erases stale
  /// (cancelled/overridden) entries encountered during the scan so a
  /// cancel-heavy workload keeps the timed queue bounded.
  [[nodiscard]] std::optional<SimTime> next_event_time() const;

  /// True when no runnable process, delta or timed notification remains.
  [[nodiscard]] bool idle() const;

  /// Requests the run loop to return after the current delta cycle.
  /// Callable from inside a process (including island workers).
  void stop() { stop_requested_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool stop_requested() const {
    return stop_requested_.load(std::memory_order_relaxed);
  }

  /// Livelock guard: a model whose processes keep notifying each other
  /// with delta notifications never lets the timestep advance (the classic
  /// zero-delay feedback bug; SystemC spins forever too). With a limit set,
  /// exceeding `limit` delta cycles within one timestep throws
  /// std::runtime_error naming the simulation time. 0 disables (default).
  void set_delta_limit(std::uint64_t limit) { delta_limit_ = limit; }

  /// --- deterministic parallel execution ---

  /// `lanes` = total evaluation parallelism including the calling thread:
  /// 0 disables (serial kernel, byte-identical legacy path), 1 runs the
  /// island machinery without extra threads, N spawns N-1 workers. Results
  /// are bit-identical across all values; see partition.hpp for the model
  /// contract (islands may only touch foreign state through signals).
  void set_parallel(unsigned lanes);
  [[nodiscard]] unsigned parallel_lanes() const { return parallel_lanes_; }

  struct ParallelStats {
    std::uint64_t islands = 0;
    std::uint64_t parallel_deltas = 0;
    std::uint64_t repartitions = 0;
    struct Lane {
      std::uint64_t busy_ns = 0;
      std::uint64_t islands_run = 0;
    };
    std::vector<Lane> lanes;  // lane 0 = the thread calling run()
  };
  [[nodiscard]] ParallelStats parallel_stats() const;

  /// Builds (if dirty) and returns the number of islands. Usable with the
  /// serial kernel too (partition inspection in tests).
  [[nodiscard]] std::size_t island_count();

  /// --- island affinity (construction-time grouping) ---
  /// Entities constructed while a construction affinity group is active
  /// inherit it; Module's constructor opens a fresh group, so a module and
  /// its members always share an island.
  [[nodiscard]] std::uint32_t new_affinity_group() {
    return affinity_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  [[nodiscard]] std::uint32_t construction_affinity() const;
  void set_construction_affinity(std::uint32_t group);
  /// Raw thread-local construction context (kernel tag + group); used by
  /// Module::AffinityScope to save/restore across nested construction.
  [[nodiscard]] static std::pair<const void*, std::uint32_t>
  construction_context();
  static void set_construction_context(const void* kernel_tag,
                                       std::uint32_t group);

  /// Merges two affinity groups into one island (modules that share state
  /// outside of signals, e.g. a testbench driving a router's FIFOs).
  void co_locate(std::uint32_t group_a, std::uint32_t group_b);
  /// Entity-level merge (e.g. Clock's generator process with its signal).
  void co_locate(Process& process, SignalBase& signal);

  /// Invalidate the island partition (new sensitivity edge, new entity).
  void mark_partition_dirty() { partition_dirty_ = true; }

  /// Throws std::logic_error if called from a parallel evaluation worker
  /// whose island does not own `event` (cross-island eval-phase mutation).
  void check_eval_access(const Event& event) const;

  /// --- registration API (used by Module; rarely called directly) ---
  Process& register_process(std::unique_ptr<Process> process);
  /// Entity bookkeeping for the partitioner (Event/SignalBase ctors).
  void register_event(Event* event);
  void register_signal(SignalBase* signal);
  void unregister_signal(SignalBase* signal);

  /// Statistics.
  [[nodiscard]] std::uint64_t process_count() const {
    return processes_.size();
  }
  /// Test introspection: current timed-queue size including stale entries.
  [[nodiscard]] std::size_t timed_queue_size() const {
    return timed_queue_.size();
  }

 private:
  friend class Event;
  friend class SignalBase;
  friend class Process;
  friend class MethodProcess;
  friend class ThreadProcess;

  void schedule_timed(Event* event, SimTime abs_time, std::uint64_t token);
  void schedule_delta(Event* event);
  /// Removes every queued reference to a dying event (Event destructor);
  /// also lazily erases stale timed entries encountered during the scan.
  void forget_event(Event* event);
  void request_update(SignalBase* signal);
  void make_runnable(Process* process);

  /// Runs initialization (first-run) of all processes not yet initialized.
  void initialize_new_processes();

  /// One full delta cycle (evaluate + update + delta notify).
  /// Returns false if there was nothing to do.
  bool do_delta_cycle();
  /// Parallel-evaluation variant (parallel_lanes_ > 0).
  bool do_delta_cycle_parallel();
  /// Phases 2 + 3, shared between the serial and parallel variants.
  void run_update_and_delta_phases();

  /// All delta cycles at the current time point.
  void exhaust_deltas();

  /// Rebuilds the island partition if dirty.
  void ensure_partition();
  /// Evaluation phase of one island (runs on a worker-pool lane).
  void evaluate_island(Island& island);
  /// Appends mid-evaluation entity registrations to the kernel registries
  /// in canonical island order (assigning deterministic entity ids).
  void commit_staged_entities(Island& island);

  SimTime now_ = 0;
  std::uint64_t delta_count_ = 0;
  std::uint64_t delta_limit_ = 0;
  std::uint64_t timed_token_counter_ = 0;
  std::atomic<bool> stop_requested_{false};
  bool in_evaluation_ = false;

  struct TimedEntry {
    Event* event;
    std::uint64_t token;
  };
  /// mutable: next_event_time() is logically const but prunes stale entries.
  mutable std::multimap<SimTime, TimedEntry> timed_queue_;
  std::vector<Event*> delta_queue_;
  std::vector<Process*> runnable_;
  std::vector<SignalBase*> update_queue_;

  /// --- partition inputs (entity registries + explicit unions) ---
  std::uint64_t next_entity_id_ = 0;
  std::vector<Event*> events_;
  std::vector<SignalBase*> signals_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entity_unions_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> group_unions_;
  std::atomic<std::uint32_t> affinity_counter_{0};

  /// --- parallel engine state ---
  unsigned parallel_lanes_ = 0;
  bool partition_dirty_ = true;
  std::uint64_t parallel_deltas_ = 0;
  std::uint64_t repartitions_ = 0;
  std::unique_ptr<Partition> partition_;
  std::unique_ptr<WorkerPool> pool_;
  std::vector<Island*> active_islands_;

  /// Owned processes LAST: a dying ThreadProcess unregisters its timeout
  /// event from the queues and registries above (members destroy in reverse
  /// declaration order, so everything it touches must be declared first).
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Process*> uninitialized_;
};

}  // namespace vhp::sim
