// Bounded FIFO channel with blocking access from thread processes
// (sc_fifo equivalent). The router model's input buffers are these.
#pragma once

#include <cassert>
#include <deque>
#include <string>

#include "vhp/sim/event.hpp"
#include "vhp/sim/process.hpp"

namespace vhp::sim {

template <typename T>
class Fifo {
 public:
  Fifo(Kernel& kernel, std::string name, std::size_t capacity)
      : name_(std::move(name)), capacity_(capacity),
        written_(kernel, name_ + ".written"),
        read_(kernel, name_ + ".read") {
    assert(capacity_ > 0);
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] bool full() const { return items_.size() >= capacity_; }

  /// Non-blocking write; false when full (the router drops packets here,
  /// exactly the paper's "if the buffer is full, the packet is dropped").
  bool nb_write(T value) {
    if (full()) return false;
    items_.push_back(std::move(value));
    written_.notify_delta();
    return true;
  }

  /// Non-blocking read; false when empty.
  bool nb_read(T& out) {
    if (empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    read_.notify_delta();
    return true;
  }

  /// Blocking write from a thread process.
  void write(T value) {
    while (full()) wait(read_);
    items_.push_back(std::move(value));
    written_.notify_delta();
  }

  /// Blocking read from a thread process.
  T read() {
    while (empty()) wait(written_);
    T value = std::move(items_.front());
    items_.pop_front();
    read_.notify_delta();
    return value;
  }

  [[nodiscard]] Event& data_written_event() { return written_; }
  [[nodiscard]] Event& data_read_event() { return read_; }

 private:
  std::string name_;
  std::size_t capacity_;
  std::deque<T> items_;
  Event written_;
  Event read_;
};

}  // namespace vhp::sim
