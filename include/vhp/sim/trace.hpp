// VCD (Value Change Dump) trace writer.
//
// The paper's flow relies on inspecting the HDL model "with the precision of
// the target hardware simulator"; dumping a VCD that any waveform viewer
// opens is the concrete form of that. Signals are sampled through the
// SignalBase change hooks, so tracing never perturbs scheduling.
#pragma once

#include <concepts>
#include <fstream>
#include <string>
#include <vector>

#include "vhp/common/types.hpp"
#include "vhp/sim/signal.hpp"

namespace vhp::sim {

class VcdWriter {
 public:
  /// Opens `path` and writes the VCD header on first flush.
  VcdWriter(Kernel& kernel, const std::string& path);
  ~VcdWriter();

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Traces a bool signal as a 1-bit wire.
  void trace(Signal<bool>& signal, const std::string& name);

  /// Traces an unsigned integral signal as an n-bit vector.
  template <std::unsigned_integral T>
  void trace(Signal<T>& signal, const std::string& name) {
    const std::string id = add_var(name, sizeof(T) * 8);
    Signal<T>* sig = &signal;
    signal.add_change_hook([this, sig, id](SimTime t) {
      record_vector(t, id, static_cast<u64>(sig->read()), sizeof(T) * 8);
    });
    initial_vectors_.push_back(
        {id, static_cast<u64>(signal.read()), sizeof(T) * 8});
  }

  /// Finalizes the file (also done by the destructor).
  void close();

 private:
  std::string add_var(const std::string& name, unsigned width);
  void write_header();
  void advance_time(SimTime t);
  void record_scalar(SimTime t, const std::string& id, bool value);
  void record_vector(SimTime t, const std::string& id, u64 value,
                     unsigned width);

  struct InitialScalar {
    std::string id;
    bool value;
  };
  struct InitialVector {
    std::string id;
    u64 value;
    unsigned width;
  };

  Kernel& kernel_;
  std::ofstream out_;
  std::vector<std::string> declarations_;
  std::vector<InitialScalar> initial_scalars_;
  std::vector<InitialVector> initial_vectors_;
  unsigned next_id_ = 0;
  bool header_written_ = false;
  SimTime last_time_ = 0;
  bool any_change_ = false;
};

}  // namespace vhp::sim
