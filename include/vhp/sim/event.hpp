// Simulation events (sc_event equivalent).
//
// An Event is the kernel's unit of causality: processes are statically
// sensitive to events or dynamically wait on them; signals notify their
// value-changed events in the update phase. Notification kinds follow
// SystemC semantics: immediate (same evaluation phase), delta (next delta
// cycle), timed (future simulation time); a pending earlier notification
// overrides a later one.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "vhp/sim/time.hpp"

namespace vhp::sim {

class Kernel;
class Process;
class SignalBase;

/// Island id of an entity the partitioner has not assigned yet.
inline constexpr std::uint32_t kNoIsland = ~std::uint32_t{0};

class Event {
 public:
  explicit Event(Kernel& kernel, std::string name = {});
  ~Event();

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  /// Immediate notification: triggers sensitive processes within the current
  /// evaluation phase. Never visible across delta cycles.
  void notify();

  /// Delta notification: triggers at the next delta cycle.
  void notify_delta();

  /// Timed notification `delay` time units from now. A pending earlier
  /// notification (delta or earlier timed) wins; a pending later timed
  /// notification is rescheduled.
  void notify_at(SimTime delay);

  /// Cancels any pending delta/timed notification.
  void cancel();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Kernel& kernel() const { return kernel_; }

 private:
  friend class Kernel;
  friend class Process;
  friend class ThreadProcess;
  friend class SignalBase;
  friend class BoolSignal;
  friend class Partition;

  enum class Pending { kNone, kDelta, kTimed };

  /// Kernel callback: fire to all sensitive/waiting processes.
  void trigger();

  Kernel& kernel_;
  std::string name_;
  /// --- island partitioning (see vhp/sim/partition.hpp) ---
  /// Sensitivity to a signal-owned event (value-changed / edge events,
  /// owner_signal_ set by the signal constructor) is the cut edge between
  /// islands; everything else glues its endpoints into one island.
  std::uint64_t entity_id_ = 0;
  std::uint32_t affinity_ = 0;  // 0 = ungrouped
  std::uint32_t island_ = kNoIsland;
  SignalBase* owner_signal_ = nullptr;
  Process* owner_process_ = nullptr;
  std::vector<Process*> static_sensitive_;
  /// One-shot waiters with their registration token: a thread waiting on
  /// several events at once (wait_any) registers on each; the token lets
  /// the losers' stale registrations be discarded on their next trigger.
  std::vector<std::pair<Process*, std::uint64_t>> dynamic_waiters_;
  Pending pending_ = Pending::kNone;
  SimTime pending_time_ = 0;
  std::uint64_t pending_token_ = 0;  // invalidates stale queue entries
};

}  // namespace vhp::sim
