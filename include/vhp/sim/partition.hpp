// Island partitioning for the deterministic parallel kernel.
//
// At elaboration end the kernel's entities (processes, events, signals)
// form a graph; the partitioner splits it into connected components called
// ISLANDS. Two entities end up in the same island when anything other than
// a delta-delayed signal couples them:
//
//   - same construction-affinity group (a Module and all its members), or
//     groups merged with Kernel::co_locate;
//   - static sensitivity of a process to a PLAIN event (one not owned by a
//     signal) — the notifier may fire it immediately, in-phase;
//   - an event owned by a signal (value-changed / edge events) or by a
//     process (a thread's private timeout event) sticks with its owner.
//
// Sensitivity to a signal-owned event is the CUT edge: signals are
// delta-delayed (reads see the pre-phase value all through evaluation, the
// write lands in the single-threaded commit), so islands that communicate
// only through signals can evaluate concurrently with no observable order.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "vhp/sim/time.hpp"

namespace vhp::sim {

class Event;
class Process;
class SignalBase;

/// One island: the unit of parallel evaluation. The staging queues collect
/// everything the island's processes schedule during an evaluation phase;
/// the kernel drains them into its global queues in canonical island order
/// (island id, then intra-island request order) on the main thread.
struct Island {
  std::uint32_t id = 0;
  std::size_t n_processes = 0;

  std::vector<Process*> runnable;
  std::vector<Event*> delta_queue;
  std::vector<SignalBase*> update_queue;
  struct StagedTimed {
    Event* event;
    SimTime time;
    std::uint64_t token;
  };
  std::vector<StagedTimed> staged_timed;

  /// Entities created mid-evaluation by this island's processes (the cosim
  /// SyncAgent pattern); committed to the kernel registries afterwards.
  std::vector<std::unique_ptr<Process>> staged_processes;
  std::vector<Event*> staged_events;
  std::vector<SignalBase*> staged_signals;

  std::exception_ptr error;
};

/// Builds islands from the kernel registries and writes the island id back
/// into every entity. Island ids are canonical: islands are ordered by the
/// smallest entity id they contain (i.e. construction order), so the commit
/// order — and therefore every observable result — is independent of worker
/// count and OS scheduling.
class Partition {
 public:
  void build(const std::vector<std::unique_ptr<Process>>& processes,
             const std::vector<Event*>& events,
             const std::vector<SignalBase*>& signals,
             const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
                 entity_unions,
             const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                 group_unions);

  [[nodiscard]] std::vector<Island>& islands() { return islands_; }
  [[nodiscard]] const std::vector<Island>& islands() const { return islands_; }

 private:
  std::vector<Island> islands_;
};

}  // namespace vhp::sim
