// Shared bus interconnect with address decoding and arbitration — the "Bus"
// block of the paper's Figure 1 board diagram, as a reusable HDL substrate.
//
// Model: a single-transaction shared bus. Masters are thread processes that
// call read()/write(); the call blocks in *simulated* time for arbitration
// (one transaction at a time), the transfer itself, and the target's wait
// states. Targets implement word-granular BusTarget and are mapped into the
// address space at elaboration.
#pragma once

#include <string>
#include <vector>

#include "vhp/common/status.hpp"
#include "vhp/sim/memory.hpp"
#include "vhp/sim/module.hpp"

namespace vhp::sim {

/// Slave-side interface (word granular: 32-bit aligned accesses).
class BusTarget {
 public:
  virtual ~BusTarget() = default;

  virtual Result<u32> bus_read(u32 offset) = 0;
  virtual Status bus_write(u32 offset, u32 data) = 0;

  /// Wait states this target adds to every access, in bus clock cycles.
  [[nodiscard]] virtual u64 wait_states() const { return 0; }
};

class Bus : public Module {
 public:
  struct Config {
    /// Simulation time units per bus clock cycle.
    SimTime clock_period = 2;
    /// Base cost of any transfer, in bus cycles (address + data phase).
    u64 transfer_cycles = 2;
  };

  struct Stats {
    u64 reads = 0;
    u64 writes = 0;
    u64 decode_errors = 0;
    /// Transactions that had to wait for the bus to free up.
    u64 contended = 0;
  };

  Bus(Kernel& kernel, std::string name, Config config);

  /// Maps [base, base+size) to `target`; offsets passed to the target are
  /// relative to base. Overlapping ranges are a configuration bug
  /// (first match wins; keep them disjoint).
  void map(u32 base, u32 size, BusTarget& target);

  /// Blocking word read/write; thread-process context only. The call takes
  /// (arbitration + transfer_cycles + target wait states) of simulated
  /// time. Unmapped addresses fail after the transfer (bus error).
  Result<u32> read(u32 addr);
  Status write(u32 addr, u32 data);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Mapping {
    u32 base;
    u32 size;
    BusTarget* target;
  };

  /// nullptr when no mapping covers addr.
  [[nodiscard]] Mapping* decode(u32 addr);

  /// One transaction at a time, FIFO-fair: each requester draws a ticket;
  /// the bus serves tickets in order, so a back-to-back master cannot
  /// starve a waiter by re-acquiring in the same instant (it draws a later
  /// ticket and queues behind).
  void acquire();
  void release();

  Config config_;
  std::vector<Mapping> map_;
  u64 next_ticket_ = 0;
  u64 serving_ = 0;
  Event released_;
  Stats stats_;
};

/// Adapts a sim::Memory to a bus target (e.g. the board RAM behind the
/// interconnect), with configurable wait states.
class MemoryBusTarget final : public BusTarget {
 public:
  explicit MemoryBusTarget(Memory& memory, u64 wait_states = 1)
      : memory_(memory), wait_states_(wait_states) {}

  Result<u32> bus_read(u32 offset) override {
    return memory_.read_u32(offset);
  }
  Status bus_write(u32 offset, u32 data) override {
    memory_.write_u32(offset, data);
    return Status::Ok();
  }
  [[nodiscard]] u64 wait_states() const override { return wait_states_; }

 private:
  Memory& memory_;
  u64 wait_states_;
};

/// A small register file target (a device's programming interface).
/// Reads return the register value; writes invoke an optional hook.
class RegisterBusTarget final : public BusTarget {
 public:
  using WriteHook = std::function<void(u32 index, u32 value)>;

  explicit RegisterBusTarget(std::size_t count, WriteHook hook = {})
      : regs_(count, 0), hook_(std::move(hook)) {}

  Result<u32> bus_read(u32 offset) override {
    const u32 index = offset / 4;
    if (index >= regs_.size()) {
      return Status{StatusCode::kOutOfRange, "register index out of range"};
    }
    return regs_[index];
  }

  Status bus_write(u32 offset, u32 data) override {
    const u32 index = offset / 4;
    if (index >= regs_.size()) {
      return Status{StatusCode::kOutOfRange, "register index out of range"};
    }
    regs_[index] = data;
    if (hook_) hook_(index, data);
    return Status::Ok();
  }

  [[nodiscard]] u32 peek(u32 index) const { return regs_[index]; }
  void poke(u32 index, u32 value) { regs_[index] = value; }

 private:
  std::vector<u32> regs_;
  WriteHook hook_;
};

}  // namespace vhp::sim
