// Signals (sc_signal equivalent): delta-delayed single-driver channels.
//
// A write stores the next value and requests an update; the kernel applies
// updates after the evaluation phase, and only a real value change notifies
// the value-changed (and, for bool, posedge/negedge) events in the next
// delta cycle. This evaluate/update split is what makes zero-delay feedback
// loops in the HDL model well defined.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "vhp/sim/event.hpp"
#include "vhp/sim/time.hpp"

namespace vhp::sim {

class Kernel;

class SignalBase {
 public:
  SignalBase(Kernel& kernel, std::string name);
  virtual ~SignalBase();

  SignalBase(const SignalBase&) = delete;
  SignalBase& operator=(const SignalBase&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Kernel& kernel() const { return kernel_; }
  [[nodiscard]] Event& value_changed_event() { return changed_; }

  /// Tracing hook, invoked in the update phase after the value changed.
  void add_change_hook(std::function<void(SimTime)> hook) {
    change_hooks_.push_back(std::move(hook));
  }

 protected:
  friend class Kernel;
  friend class Partition;

  /// Applies the pending value; called by the kernel in the update phase.
  virtual void update() = 0;

  void request_update();
  /// Called by concrete signals from update() after a REAL value change.
  void notify_change_hooks();

  Kernel& kernel_;
  std::string name_;
  Event changed_;
  bool update_requested_ = false;
  std::vector<std::function<void(SimTime)>> change_hooks_;
  /// --- island partitioning (see vhp/sim/partition.hpp) ---
  std::uint64_t entity_id_ = 0;
  std::uint32_t affinity_ = 0;  // 0 = ungrouped
  std::uint32_t island_ = kNoIsland;
};

template <typename T>
class Signal : public SignalBase {
 public:
  Signal(Kernel& kernel, std::string name, T init = T{})
      : SignalBase(kernel, std::move(name)), cur_(init), next_(init) {}

  [[nodiscard]] const T& read() const { return cur_; }

  void write(const T& value) {
    next_ = value;
    request_update();
  }

 protected:
  void update() override {
    if (next_ == cur_) return;
    cur_ = next_;
    changed_.notify_delta();
    this->notify_change_hooks();
    this->on_changed();
  }

  /// Extension point for the bool specialization's edge events.
  virtual void on_changed() {}

  T cur_;
  T next_;
};

/// Boolean signal with edge events (the sc_signal<bool> special case).
class BoolSignal : public Signal<bool> {
 public:
  BoolSignal(Kernel& kernel, std::string name, bool init = false);

  [[nodiscard]] Event& posedge_event() { return posedge_; }
  [[nodiscard]] Event& negedge_event() { return negedge_; }

 protected:
  void on_changed() override;

 private:
  Event posedge_;
  Event negedge_;
};

/// Free-running clock generator: a BoolSignal toggled by the kernel.
/// Posedge at start_time, start_time + period, ...; negedge half a period
/// after each posedge.
class Clock : public BoolSignal {
 public:
  Clock(Kernel& kernel, std::string name, SimTime period,
        SimTime start_time = 0);

  [[nodiscard]] SimTime period() const { return period_; }

 private:
  void toggle();

  SimTime period_;
  Event tick_;
};

}  // namespace vhp::sim
