// Simulation processes: method processes (re-run to completion on every
// trigger, like SC_METHOD) and thread processes (a fiber that suspends in
// wait(), like SC_THREAD).
#pragma once

#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "vhp/common/fiber.hpp"
#include "vhp/sim/event.hpp"
#include "vhp/sim/time.hpp"

namespace vhp::sim {

class Kernel;
class Module;

class Process {
 public:
  enum class Kind { kMethod, kThread };

  virtual ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Adds a static sensitivity; returns *this for chaining:
  ///   method("rx", fn).sensitive(clk.posedge_event()).sensitive(reset_ev);
  Process& sensitive(Event& event);

  /// Suppresses the initialization run at simulation start.
  Process& dont_initialize();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool terminated() const { return terminated_; }

 protected:
  Process(Kernel& kernel, Kind kind, std::string name);

  friend class Kernel;
  friend class Event;
  friend class Partition;

  /// Marks runnable (idempotent within one evaluation phase).
  void trigger_from(Event& event);
  /// Dynamic-wait wake path; stale tokens are ignored.
  void trigger_dynamic(Event& event, std::uint64_t token);
  /// Runs the process body once (method: full call; thread: until wait/end).
  virtual void execute() = 0;

  Kernel& kernel_;
  Kind kind_;
  std::string name_;
  bool runnable_ = false;
  bool terminated_ = false;
  bool initialize_ = true;
  /// Dynamic-wait bookkeeping: while a thread waits dynamically, static
  /// sensitivity is masked (SystemC semantics) and only a registration
  /// carrying the current token may wake it.
  bool dynamic_wait_active_ = false;
  std::uint64_t wait_token_ = 0;
  Event* last_dynamic_trigger_ = nullptr;
  std::vector<Event*> static_events_;
  /// --- island partitioning (see vhp/sim/partition.hpp) ---
  std::uint64_t entity_id_ = 0;
  std::uint32_t affinity_ = 0;  // 0 = ungrouped
  std::uint32_t island_ = kNoIsland;
};

class MethodProcess final : public Process {
 public:
  MethodProcess(Kernel& kernel, std::string name, std::function<void()> fn);

 private:
  void execute() override;

  std::function<void()> fn_;
};

class ThreadProcess final : public Process {
 public:
  ThreadProcess(Kernel& kernel, std::string name, std::function<void()> fn,
                std::size_t stack_bytes = Fiber::kDefaultStackBytes);

  /// --- blocking waits; callable only from inside this thread process ---
  /// (exposed through the free functions in kernel.hpp)

 private:
  friend class Kernel;
  void execute() override;

  /// Dynamic wait helpers used by the free wait() functions.
  void wait_on_event(Event& event);
  Event* wait_on_any(std::initializer_list<Event*> events);
  bool wait_on_event_timeout(Event& event, SimTime timeout);
  void wait_for(SimTime delay);
  void wait_static();

  friend void wait(Event&);
  friend void wait(SimTime);
  friend void wait();
  friend Event* wait_any(std::initializer_list<Event*>);
  friend bool wait_with_timeout(Event&, SimTime);

  std::function<void()> fn_;
  Fiber fiber_;
  Event timeout_event_;
};

/// Suspends the current thread process until `event` fires.
void wait(Event& event);
/// Suspends the current thread process for `delay` time units.
void wait(SimTime delay);
/// Suspends the current thread process until any statically sensitive event.
void wait();
/// Suspends until the FIRST of `events` fires; returns which one
/// (sc_event_or_list equivalent). Registrations on the losers go stale and
/// are discarded on their next trigger.
Event* wait_any(std::initializer_list<Event*> events);
/// Suspends until `event` fires or `timeout` time units pass; false on
/// timeout.
bool wait_with_timeout(Event& event, SimTime timeout);

/// The thread process currently executing, or nullptr (e.g. in a method).
[[nodiscard]] ThreadProcess* current_thread_process();

}  // namespace vhp::sim
