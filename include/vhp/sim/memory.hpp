// Byte-addressable memory model for HDL designs (the "Memory" block of the
// paper's Figure 1 board diagram, reusable by any device model such as the
// DMA engine example). Sparse page storage, so a 4 GiB address space costs
// only what is touched; optional access counters for verification.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <unordered_map>

#include "vhp/common/bytes.hpp"
#include "vhp/common/types.hpp"

namespace vhp::sim {

class Memory {
 public:
  static constexpr std::size_t kPageBytes = 4096;

  explicit Memory(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Reads `out.size()` bytes from `addr`. Untouched memory reads as 0.
  void read(u64 addr, std::span<u8> out) const;

  /// Convenience: reads `n` bytes into a fresh buffer.
  [[nodiscard]] Bytes read(u64 addr, std::size_t n) const;

  void write(u64 addr, std::span<const u8> data);

  [[nodiscard]] u8 read_u8(u64 addr) const;
  [[nodiscard]] u32 read_u32(u64 addr) const;  // little-endian
  void write_u8(u64 addr, u8 value);
  void write_u32(u64 addr, u32 value);  // little-endian

  /// Zero-fills everything (drops all pages).
  void clear() { pages_.clear(); }

  [[nodiscard]] std::size_t resident_pages() const { return pages_.size(); }
  [[nodiscard]] u64 reads() const { return reads_; }
  [[nodiscard]] u64 writes() const { return writes_; }

 private:
  using Page = std::array<u8, kPageBytes>;

  /// Page for reading; nullptr when never written (reads as zero).
  [[nodiscard]] const Page* page_for_read(u64 page_index) const;
  Page& page_for_write(u64 page_index);

  std::string name_;
  std::unordered_map<u64, std::unique_ptr<Page>> pages_;
  mutable u64 reads_ = 0;
  u64 writes_ = 0;
};

}  // namespace vhp::sim
