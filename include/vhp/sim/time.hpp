// Simulation time base.
//
// The kernel advances an abstract integer time; a Clock maps it to HW clock
// cycles (the paper's co-simulation synchronizes on clock cycles, so the
// default convention throughout this repo is: one clock period = 2 time
// units, posedge on even units).
#pragma once

#include <cstdint>
#include <limits>

namespace vhp::sim {

using SimTime = std::uint64_t;

inline constexpr SimTime kTimeInfinity =
    std::numeric_limits<SimTime>::max();

}  // namespace vhp::sim
