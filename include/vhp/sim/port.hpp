// Ports: a module's typed connection points, bound to signals at elaboration
// (sc_in / sc_out equivalents). The cosim module derives DriverIn/DriverOut
// from these, exactly as the paper derives driver_in/driver_out from
// sc_in/sc_out (Section 5.2).
#pragma once

#include <cassert>

#include "vhp/sim/signal.hpp"

namespace vhp::sim {

template <typename T>
class InPort {
 public:
  InPort() = default;

  void bind(Signal<T>& signal) { signal_ = &signal; }

  [[nodiscard]] bool bound() const { return signal_ != nullptr; }

  [[nodiscard]] const T& read() const {
    assert(bound() && "read of unbound port");
    return signal_->read();
  }

  [[nodiscard]] Event& value_changed_event() {
    assert(bound());
    return signal_->value_changed_event();
  }

 protected:
  Signal<T>* signal_ = nullptr;
};

/// Bool input port exposing edge events; must be bound to a BoolSignal
/// (or Clock).
class BoolInPort : public InPort<bool> {
 public:
  void bind(BoolSignal& signal) {
    InPort<bool>::bind(signal);
    bool_signal_ = &signal;
  }

  [[nodiscard]] Event& posedge_event() {
    assert(bool_signal_ != nullptr);
    return bool_signal_->posedge_event();
  }
  [[nodiscard]] Event& negedge_event() {
    assert(bool_signal_ != nullptr);
    return bool_signal_->negedge_event();
  }

 private:
  BoolSignal* bool_signal_ = nullptr;
};

template <typename T>
class OutPort {
 public:
  OutPort() = default;

  void bind(Signal<T>& signal) { signal_ = &signal; }

  [[nodiscard]] bool bound() const { return signal_ != nullptr; }

  void write(const T& value) {
    assert(bound() && "write to unbound port");
    signal_->write(value);
  }

  /// Current (not pending) value of the bound signal.
  [[nodiscard]] const T& read() const {
    assert(bound());
    return signal_->read();
  }

 private:
  Signal<T>* signal_ = nullptr;
};

}  // namespace vhp::sim
