// UART device-under-design: the archetypal peripheral a designer would
// prototype with the paper's methodology before committing it to the FPGA.
//
// The model is line-accurate: bytes written through the driver are shifted
// out on the `tx` signal as real 8N1 frames (start bit, 8 data bits LSB
// first, stop bit) at the configured divisor, and the `rx` signal is
// sampled the same way — so a VCD trace of the pins shows genuine serial
// waveforms, and two UARTs can be wired tx->rx.
//
// Register map (device addresses, offset from `base`):
//   +0x0  TXDATA   (write) byte to transmit; queued in the TX FIFO
//   +0x4  STATUS   (read)  bit0 = TX busy, bit1 = RX available,
//                          bit2 = TX FIFO full
//   +0x8  RXDATA   (read)  pops one received byte (0 when empty)
//   +0xc  DIVISOR  (write) clock cycles per bit (power-on default 8)
// Interrupt: pulses the irq line when a received byte becomes available.
#pragma once

#include <deque>
#include <span>
#include <vector>

#include "vhp/cosim/cosim_kernel.hpp"
#include "vhp/sim/module.hpp"

namespace vhp::devices {

class UartModel : public sim::Module {
 public:
  static constexpr u32 kTxData = 0x0;
  static constexpr u32 kStatus = 0x4;
  static constexpr u32 kRxData = 0x8;
  static constexpr u32 kDivisor = 0xc;

  static constexpr u32 kStatusTxBusy = 1u << 0;
  static constexpr u32 kStatusRxAvail = 1u << 1;
  static constexpr u32 kStatusTxFull = 1u << 2;

  struct Config {
    u32 base = 0x0;
    u32 default_divisor = 8;  // clock cycles per bit
    std::size_t fifo_depth = 16;
  };

  UartModel(cosim::CosimKernel& hw, std::string name, Config config);

  /// Serial pins (idle high).
  [[nodiscard]] sim::BoolSignal& tx() { return tx_; }
  [[nodiscard]] sim::BoolSignal& rx() { return rx_; }
  /// Pulses on RX byte available; wire to CosimKernel::watch_interrupt.
  [[nodiscard]] sim::BoolSignal& irq() { return irq_; }

  struct Stats {
    u64 bytes_tx = 0;
    u64 bytes_rx = 0;
    u64 tx_overflows = 0;
    u64 rx_overflows = 0;
    u64 framing_errors = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] u32 divisor() const { return divisor_; }

 private:
  void tx_loop();
  void rx_loop();
  [[nodiscard]] u32 status_word() const;

  sim::SimTime period_;
  u32 divisor_;
  std::size_t fifo_depth_;

  sim::BoolSignal& tx_;
  sim::BoolSignal& rx_;
  sim::BoolSignal& irq_;
  sim::Event tx_pending_;
  bool tx_shifting_ = false;

  std::deque<u8> tx_fifo_;
  std::deque<u8> rx_fifo_;
  Stats stats_;
};

/// Peer-side instrument: decodes 8N1 frames from a serial line into bytes
/// (a logic-analyzer view of the pin).
class SerialSniffer : public sim::Module {
 public:
  SerialSniffer(sim::Kernel& kernel, std::string name, sim::BoolSignal& line,
                u32 divisor, sim::SimTime clock_period);

  [[nodiscard]] const std::vector<u8>& received() const { return received_; }
  [[nodiscard]] u64 framing_errors() const { return framing_errors_; }

 private:
  void sniff_loop();

  sim::BoolSignal& line_;
  u32 divisor_;
  sim::SimTime period_;
  std::vector<u8> received_;
  u64 framing_errors_ = 0;
};

/// Peer-side stimulus: drives queued bytes onto a serial line as 8N1
/// frames (the "remote terminal" end of the cable).
class SerialDriver : public sim::Module {
 public:
  /// `gap_bits`: idle bit times inserted between frames (a real terminal
  /// types much slower than the line rate; 1 = back-to-back frames).
  SerialDriver(sim::Kernel& kernel, std::string name, sim::BoolSignal& line,
               u32 divisor, sim::SimTime clock_period, u32 gap_bits = 1);

  /// Queues bytes for transmission (callable before or during simulation).
  void queue(std::span<const u8> bytes);
  void queue_text(std::string_view text);

  [[nodiscard]] bool idle() const { return pending_.empty() && !shifting_; }

 private:
  void drive_loop();

  sim::BoolSignal& line_;
  u32 divisor_;
  sim::SimTime period_;
  u32 gap_bits_;
  std::deque<u8> pending_;
  sim::Event enqueued_;
  bool shifting_ = false;
};

}  // namespace vhp::devices
