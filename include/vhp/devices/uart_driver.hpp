// Board-side UART driver: the eCos-style serial driver the application
// links against while the UART itself is still an HDL model on the
// simulation kernel. TX throttles on the device's FIFO-full status bit;
// RX is interrupt-driven (the device pulses its line per received byte,
// the DSR posts, the reader thread drains RXDATA).
#pragma once

#include <string>
#include <string_view>

#include "vhp/board/board.hpp"
#include "vhp/devices/uart.hpp"
#include "vhp/rtos/sync.hpp"

namespace vhp::devices {

struct UartDriverConfig {
  u32 base = 0x0;
  u32 irq_vector = board::Board::kDeviceVector;
  /// Modeled cost of one register access, in board CPU cycles.
  u64 reg_access_cost = 5;
  /// Ticks to sleep between TX-full polls.
  u64 tx_poll_ticks = 1;
};

class UartDriver {
 public:
  /// Installs the RX interrupt handler. Construct before Board::run().
  explicit UartDriver(board::Board& board, UartDriverConfig config = {});

  UartDriver(const UartDriver&) = delete;
  UartDriver& operator=(const UartDriver&) = delete;

  /// Transmits every byte, sleeping while the device FIFO is full.
  Status write_text(std::string_view text);

  /// Blocks until one received byte is available.
  Result<u8> read_byte();

  /// Reads up to (and including) '\n' or `max_len` bytes.
  Result<std::string> read_line(std::size_t max_len = 256);

  /// Reprograms the baud divisor.
  Status set_divisor(u32 divisor);

 private:
  Result<u32> read_reg(u32 offset);
  Status write_reg(u32 offset, u32 value);

  board::Board& board_;
  UartDriverConfig config_;
  rtos::Semaphore rx_avail_;
};

}  // namespace vhp::devices
