// The virtual board: a host thread's worth of CPU running the RTOS, wired
// to the simulation kernel through the three-channel link. Implements the
// board-side half of the paper:
//   * the remote-device driver (devtab entry "/dev/sysc") whose read/write
//     travel over DATA_PORT,
//   * the *channel thread* listening on INT_PORT and dispatching interrupts
//     into the RTOS ISR/DSR machinery,
//   * the *systemc thread* listening on CLOCK_PORT, granting execution
//     budget on CLOCK_TICK and shutting the board down on SHUTDOWN,
//   * the freeze callback that reports the board tick (TIME_ACK) whenever
//     the OS enters the idle state.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <thread>

#include "vhp/board/channel_waiter.hpp"
#include "vhp/common/log.hpp"
#include "vhp/mem/config.hpp"
#include "vhp/mem/system.hpp"
#include "vhp/net/channel.hpp"
#include "vhp/obs/hub.hpp"
#include "vhp/rtos/device.hpp"
#include "vhp/rtos/kernel.hpp"
#include "vhp/rtos/sync.hpp"

namespace vhp::board {

struct BoardConfig {
  rtos::KernelConfig rtos{};
  /// Log-line identity; empty means "board". Fabric nodes run N boards in
  /// one process; naming each ("node0", ...) keeps their logs tellable
  /// apart.
  std::string name;
  /// Board CPU cycles granted per simulated HW clock cycle in a CLOCK_TICK.
  u64 cycles_per_sim_cycle = 1;
  /// Modeled driver overhead charged to the calling thread, in CPU cycles.
  u64 dev_read_cost = 0;
  u64 dev_write_cost = 0;
  /// Priority of the communication threads (above applications).
  int comm_priority = 2;
  /// Untimed mode: no budget, no freeze/ack; the board free-runs
  /// (the Figure 6 baseline).
  bool free_running = false;
  /// Adaptive synchronization (DESIGN.md §10): when set, every TIME_ACK
  /// carries the board's lookahead (wire v2) — the earliest future master
  /// sim-cycle at which the RTOS can next interact, derived from
  /// Kernel::next_event_cycles(). Off by default so acks stay byte-identical
  /// to the v1 wire format unless the master opted into adaptive mode.
  bool advertise_lookahead = false;
  /// Memory hierarchy (DESIGN.md §13): when set, the board owns a
  /// mem::MemorySystem with rtos.cores ports — the ISS runners attach to it
  /// and instruction cost becomes pipelined (caches, bank contention).
  /// Unset (default) keeps the flat cycle-budget board, bit-compatible with
  /// every existing recording. Required whenever rtos.cores > 1.
  std::optional<mem::MemConfig> memory;
};

class Board {
 public:
  /// Interrupt vector of the simulated device (must match the HDL side).
  static constexpr u32 kDeviceVector = 16;
  /// Devtab name of the remote simulated device.
  static constexpr const char* kDeviceName = "/dev/sysc";

  /// `hub` is the session's observability hub; nullptr (standalone wiring,
  /// unit tests) gets a private hub with tracing disabled — metric counters
  /// still run, they back stats().
  Board(BoardConfig config, net::CosimLink link, obs::Hub* hub = nullptr);
  ~Board();

  Board(const Board&) = delete;
  Board& operator=(const Board&) = delete;

  [[nodiscard]] rtos::Kernel& kernel() { return kernel_; }
  [[nodiscard]] rtos::DeviceTable& devtab() { return devtab_; }
  [[nodiscard]] const BoardConfig& config() const { return config_; }

  /// The memory hierarchy; nullptr on a flat (legacy) board — present
  /// exactly when BoardConfig::memory is set.
  [[nodiscard]] mem::MemorySystem* memory_system() { return memsys_.get(); }

  /// ----- remote device access (driver internals; applications normally
  /// go through devtab().lookup(kDeviceName)) -----

  /// Reads `nbytes` at device address `addr`: sends DATA_READ_REQ and
  /// blocks the calling thread (in virtual time too) until the response.
  Result<Bytes> dev_read(u32 addr, u32 nbytes);

  /// Writes to device address `addr` (fire-and-forget, like a posted bus
  /// write).
  Status dev_write(u32 addr, std::span<const u8> data);

  /// Registers the DSR-level handler for the simulated device's default
  /// interrupt vector (kDeviceVector). Runs at scheduler-safe points;
  /// typically wakes an application thread.
  void attach_device_dsr(std::function<void(u32 vector)> dsr);

  /// Multi-device prototyping: registers a DSR for an additional interrupt
  /// vector (each simulated device gets its own line; wire the HDL side
  /// with CosimKernel::watch_interrupt(line, vector)).
  void attach_interrupt(u32 vector, std::function<void(u32 vector)> dsr);

  /// Spawns an application thread (priority below the comm threads).
  rtos::Thread& spawn_app(std::string name, int priority,
                          rtos::Thread::Entry entry,
                          std::size_t stack_bytes = Fiber::kDefaultStackBytes);

  /// Boots the comm threads and runs the RTOS until SHUTDOWN (or
  /// kernel().shutdown()). Call on the board's host thread.
  void run();

  /// ----- cooperative hosting (svc::SessionHost / fabric event loop) -----

  /// Spawns the comm threads without entering the run loop. Idempotent;
  /// run() calls it too. All pump() calls must come from one thread (the
  /// event loop) — fibers are not migratable.
  void boot();

  enum class PumpStatus {
    kLive,  // starved: parked until new input arrives on the link
    kDone,  // SHUTDOWN processed (or kernel shut down)
  };

  /// Runs the RTOS until it is starved (frozen with nothing pending on
  /// any channel) or shut down. Non-blocking in host terms: no sleeping,
  /// no pacing. Requires boot().
  PumpStatus pump();

  /// Readiness fds of the board side of the link (DATA/INT/CLOCK rx), for
  /// event-loop registration; channels without one are omitted.
  [[nodiscard]] std::vector<int> readable_fds();

  [[nodiscard]] obs::Hub& obs() { return *hub_; }

  /// Compatibility view over the metrics registry (the counters live under
  /// "board.*"); returned by value as a snapshot.
  struct Stats {
    u64 interrupts_received = 0;
    u64 clock_ticks_received = 0;
    u64 acks_sent = 0;
    u64 dev_reads = 0;
    u64 dev_writes = 0;
  };
  [[nodiscard]] Stats stats() const {
    return Stats{interrupts_received_.value(), clock_ticks_received_.value(),
                 acks_sent_.value(), dev_reads_.value(), dev_writes_.value()};
  }

 private:
  void systemc_thread_body();
  void channel_thread_body();
  bool idle_poll();

  BoardConfig config_;
  net::CosimLink link_;
  Logger log_{config_.name.empty() ? std::string("board") : config_.name};

  // Declared before the counter references: init order matters.
  std::unique_ptr<obs::Hub> owned_hub_;
  obs::Hub* hub_;
  obs::Counter& interrupts_received_;
  obs::Counter& clock_ticks_received_;
  obs::Counter& acks_sent_;
  obs::Counter& dev_reads_;
  obs::Counter& dev_writes_;
  obs::LatencyHistogram& dev_read_ns_;
  obs::SpanSink& spans_;

  rtos::Kernel kernel_;
  rtos::DeviceTable devtab_;
  /// Set iff config_.memory is (see memory_system()).
  std::unique_ptr<mem::MemorySystem> memsys_;

  std::unique_ptr<ChannelWaiter> data_rx_;
  std::unique_ptr<ChannelWaiter> int_rx_;
  std::unique_ptr<ChannelWaiter> clock_rx_;
  IdlePacer pacer_;

  rtos::Mutex data_mutex_{kernel_};  // serializes DATA request/response
  std::function<void(u32)> device_dsr_;

  // RTOS timeline tracing: adjacent slices of the same thread are merged
  // (the idle loop would otherwise flood the trace).
  std::string slice_thread_;
  u64 slice_start_ns_ = 0;

  // Cross-node timeline (wire v3, DESIGN.md §7.2): the round id of the last
  // CLOCK_TICK, echoed on the next TIME_ACK, plus the rx/tx stamps backing
  // the compute (tick→ack) and frozen (ack→next tick) spans. Touched only
  // from the board's fibers (one host thread) — no synchronization needed.
  std::optional<u64> round_;
  u64 round_cycle_ = 0;
  u64 tick_rx_ns_ = 0;
  u64 ack_tx_ns_ = 0;

  bool booted_ = false;
  bool halt_logged_ = false;
};

/// Convenience: runs a Board on its own host thread; joins on destruction.
class BoardHost {
 public:
  BoardHost(BoardConfig config, net::CosimLink link, obs::Hub* hub = nullptr);
  ~BoardHost();

  BoardHost(const BoardHost&) = delete;
  BoardHost& operator=(const BoardHost&) = delete;

  /// Valid until start() is called; configure apps/DSRs here.
  [[nodiscard]] Board& board() { return board_; }

  /// Launches the board host thread (runs Board::run()).
  void start();
  /// Blocks until the board shut down.
  void join();

 private:
  Board board_;
  std::thread thread_;
  bool started_ = false;
};

}  // namespace vhp::board
