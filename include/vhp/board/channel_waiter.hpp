// RTOS-blocking reception over a net::Channel.
//
// On the real SCM2x0 board, socket reads block the calling eCos thread while
// the rest of the OS keeps running. Our net::Channel::recv would block the
// whole virtual board (one host thread), so comm threads instead block on an
// RTOS semaphore that the idle thread posts after polling the channel — the
// exact division of labour the paper describes for its idle state: the idle
// thread keeps the socket connection alive, the channel/systemc threads do
// the protocol work.
#pragma once

#include <deque>
#include <optional>
#include <string>

#include "vhp/common/bytes.hpp"
#include "vhp/net/channel.hpp"
#include "vhp/rtos/sync.hpp"

namespace vhp::board {

class ChannelWaiter {
 public:
  ChannelWaiter(rtos::Kernel& kernel, net::Channel& channel, std::string name);

  /// Drains whatever the channel has pending into the local queue, waking
  /// blocked receivers. Host-non-blocking. Returns true if anything arrived
  /// (frames or a close).
  bool poll();

  /// RTOS-blocking receive: the calling thread sleeps on the semaphore
  /// until poll() (from the idle thread or this call itself) delivers a
  /// frame. Returns nullopt once the channel is closed and drained.
  std::optional<Bytes> recv();

  /// Non-blocking variant.
  std::optional<Bytes> try_get();

  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  net::Channel& channel_;
  std::string name_;
  std::deque<Bytes> pending_;
  rtos::Semaphore available_;
  bool closed_ = false;
};

/// Escalating host pause for the idle polling loop: spin first (sync
/// round trips are latency-critical), then yield, then sleep.
class IdlePacer {
 public:
  void pause();
  void reset() { empty_polls_ = 0; }

 private:
  u64 empty_polls_ = 0;
};

}  // namespace vhp::board
