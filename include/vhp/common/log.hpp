// Thread-safe leveled logger.
//
// Both "sides" of the co-simulation (kernel thread and board thread) log
// through this sink; each record carries a component tag so a merged log
// reads like the paper's Figure 2 timeline. Level comes from the VHP_LOG
// environment variable (error|warn|info|debug|trace), default warn.
#pragma once

#include <string>
#include <string_view>

#include "vhp/common/format.hpp"

namespace vhp {

enum class LogLevel { kError = 0, kWarn, kInfo, kDebug, kTrace };

namespace log_detail {
/// Current threshold; records above it are discarded before formatting.
LogLevel threshold();
void set_threshold(LogLevel level);
void emit(LogLevel level, std::string_view component, std::string_view text);
}  // namespace log_detail

/// A named log channel, one per subsystem ("sim", "rtos", "cosim", ...).
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  template <typename... Args>
  void error(std::string_view fmt, Args&&... args) const {
    logf(LogLevel::kError, fmt, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void warn(std::string_view fmt, Args&&... args) const {
    logf(LogLevel::kWarn, fmt, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void info(std::string_view fmt, Args&&... args) const {
    logf(LogLevel::kInfo, fmt, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void debug(std::string_view fmt, Args&&... args) const {
    logf(LogLevel::kDebug, fmt, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void trace(std::string_view fmt, Args&&... args) const {
    logf(LogLevel::kTrace, fmt, std::forward<Args>(args)...);
  }

  [[nodiscard]] bool enabled(LogLevel level) const {
    return level <= log_detail::threshold();
  }

 private:
  template <typename... Args>
  void logf(LogLevel level, std::string_view fmt,
            Args&&... args) const {
    if (!enabled(level)) return;
    log_detail::emit(level, component_,
                     strformat(fmt, args...));
  }

  std::string component_;
};

}  // namespace vhp
