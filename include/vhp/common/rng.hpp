// Deterministic pseudo-random numbers (xoshiro256**).
//
// Workload generators (the paper's packet producer generates "packets with a
// random destination address") must be reproducible across runs and across
// the in-proc / TCP transports, so everything randomized in this repository
// draws from this generator with an explicit seed — never from std::rand or
// a default-seeded std::mt19937.
#pragma once

#include <array>
#include <cassert>

#include "vhp/common/types.hpp"

namespace vhp {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded through SplitMix64 so that
/// any 64-bit seed (including 0) yields a well-mixed state.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(u64 seed) {
    u64 x = seed;
    for (auto& s : state_) s = splitmix64(x);
  }

  /// Uniform over the full 64-bit range.
  u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  u64 below(u64 bound) {
    assert(bound > 0);
    // Rejection sampling on the top bits keeps the distribution exact.
    const u64 threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
    for (;;) {
      const u64 r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  u64 range(u64 lo, u64 hi) {
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static u64 splitmix64(u64& x) {
    x += 0x9e3779b97f4a7c15ULL;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::array<u64, 4> state_{};
};

}  // namespace vhp
