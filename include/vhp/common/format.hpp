// Minimal "{}"-placeholder string formatting.
//
// The toolchain this project targets (GCC 12) ships no <format>, so logging
// and error messages use this small substitute: each "{}" in the format
// string is replaced by the next argument streamed through operator<<.
// Surplus arguments are appended at the end; surplus placeholders stay
// verbatim. Good enough for diagnostics; not a general formatter.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace vhp {

namespace format_detail {

inline void format_rest(std::ostringstream& out, std::string_view& fmt) {
  out << fmt;
  fmt = {};
}

template <typename Arg, typename... Rest>
void format_rest(std::ostringstream& out, std::string_view& fmt,
                 const Arg& arg, const Rest&... rest) {
  const auto pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    out << fmt << ' ' << arg;
    fmt = {};
  } else {
    out << fmt.substr(0, pos) << arg;
    fmt.remove_prefix(pos + 2);
  }
  format_rest(out, fmt, rest...);
}

}  // namespace format_detail

template <typename... Args>
[[nodiscard]] std::string strformat(std::string_view fmt,
                                    const Args&... args) {
  std::ostringstream out;
  format_detail::format_rest(out, fmt, args...);
  return out.str();
}

}  // namespace vhp
