// Checksum algorithms used by the router case study.
//
// The paper's packets carry a "16 bit field used for error detection"; the
// board-side C application recomputes it. We implement the classic Internet
// checksum (RFC 1071 one's-complement sum) as that 16-bit field, plus CRC-32
// (IEEE 802.3) used by the tests as an independent integrity oracle.
#pragma once

#include <span>

#include "vhp/common/types.hpp"

namespace vhp {

/// RFC 1071 Internet checksum over `data`. Returns the one's-complement of
/// the one's-complement sum; verifying code checks that a buffer whose
/// checksum field was filled in sums to 0xFFFF (i.e. checksum of the whole
/// buffer including the field equals 0).
[[nodiscard]] u16 internet_checksum(std::span<const u8> data);

/// True iff `data` (which embeds its checksum field) verifies.
[[nodiscard]] bool internet_checksum_ok(std::span<const u8> data);

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF).
[[nodiscard]] u32 crc32(std::span<const u8> data);

}  // namespace vhp
