// Little-endian byte serialization used by the wire protocol (DESIGN.md §6).
//
// All multi-byte integers on the co-simulation link are little-endian,
// matching the SCM2x0's RISC core convention; the codec is explicit so the
// wire format does not depend on host endianness.
#pragma once

#include <bit>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "vhp/common/status.hpp"
#include "vhp/common/types.hpp"

namespace vhp {

using Bytes = std::vector<u8>;

/// Appends little-endian encodings to a growing byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void u8v(u8 v) { out_.push_back(v); }
  void u16v(u16 v) { append(&v, sizeof v); }
  void u32v(u32 v) { append(&v, sizeof v); }
  void u64v(u64 v) { append(&v, sizeof v); }
  void bytes(std::span<const u8> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  /// Length-prefixed (u32) byte string.
  void sized_bytes(std::span<const u8> data) {
    u32v(static_cast<u32>(data.size()));
    bytes(data);
  }

 private:
  void append(const void* p, std::size_t n) {
    // Serialize explicitly little-endian regardless of host order.
    // push_back loop rather than insert: n is at most 8 here, and GCC 12's
    // -O2 stringop-overflow checker false-positives on the inlined
    // vector::insert range path.
    const auto* src = static_cast<const u8*>(p);
    out_.reserve(out_.size() + n);
    if constexpr (std::endian::native == std::endian::little) {
      for (std::size_t i = 0; i < n; ++i) out_.push_back(src[i]);
    } else {
      for (std::size_t i = 0; i < n; ++i) out_.push_back(src[n - 1 - i]);
    }
  }

  Bytes& out_;
};

/// Reads little-endian encodings from a byte span with bounds checking.
/// Any overrun puts the reader into a failed state; callers check ok() once
/// after parsing a whole message (monadic style keeps call sites flat).
class ByteReader {
 public:
  explicit ByteReader(std::span<const u8> data) : data_(data) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }

  u8 u8v() {
    u8 v = 0;
    extract(&v, sizeof v);
    return v;
  }
  u16 u16v() {
    u16 v = 0;
    extract(&v, sizeof v);
    return v;
  }
  u32 u32v() {
    u32 v = 0;
    extract(&v, sizeof v);
    return v;
  }
  u64 u64v() {
    u64 v = 0;
    extract(&v, sizeof v);
    return v;
  }
  Bytes bytes(std::size_t n) {
    if (!check(n)) return {};
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  /// Reads a u32 length prefix then that many bytes.
  Bytes sized_bytes() {
    const u32 n = u32v();
    return bytes(n);
  }

 private:
  bool check(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  void extract(void* p, std::size_t n) {
    if (!check(n)) {
      std::memset(p, 0, n);
      return;
    }
    auto* dst = static_cast<u8*>(p);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(dst, data_.data() + pos_, n);
    } else {
      for (std::size_t i = 0; i < n; ++i) dst[i] = data_[pos_ + n - 1 - i];
    }
    pos_ += n;
  }

  std::span<const u8> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Hex dump ("de ad be ef") of at most `max_bytes` bytes; for log messages.
[[nodiscard]] std::string hex_dump(std::span<const u8> data,
                                   std::size_t max_bytes = 32);

}  // namespace vhp
