// Streaming statistics used by the benchmark harnesses and the router's
// packet accounting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace vhp {

/// Welford streaming mean/variance with min/max, O(1) per sample.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width linear histogram; overflow samples land in the last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
        counts_(buckets, 0) {}

  void add(double x) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
  }

  [[nodiscard]] std::size_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const {
    return lo_ + width_ * static_cast<double>(i);
  }

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace vhp
