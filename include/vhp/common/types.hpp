// Fundamental strong types shared by every vhp module.
//
// The co-simulation protocol deals with three distinct notions of time
// (paper, Section 3):
//   * HW clock cycles of the simulated hardware model  -> Cycles
//   * HW timer ticks of the board's hardware timer     -> HwTicks
//   * SW ticks of the RTOS (timer ISR granularity)     -> SwTicks
// Mixing them up is the classic bug in timed co-simulation code, so each is
// a distinct arithmetic wrapper rather than a bare u64.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace vhp {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// CRTP arithmetic wrapper: a u64 count that refuses to mix with other
/// counts. Supports the operations a monotonically advancing time counter
/// needs (add/subtract deltas, compare, scale).
template <typename Tag>
class Count {
 public:
  constexpr Count() = default;
  constexpr explicit Count(u64 v) : value_(v) {}

  [[nodiscard]] constexpr u64 value() const { return value_; }

  constexpr auto operator<=>(const Count&) const = default;

  constexpr Count& operator+=(Count d) {
    value_ += d.value_;
    return *this;
  }
  constexpr Count& operator-=(Count d) {
    value_ -= d.value_;
    return *this;
  }
  constexpr Count& operator++() {
    ++value_;
    return *this;
  }
  friend constexpr Count operator+(Count a, Count b) {
    return Count{a.value_ + b.value_};
  }
  friend constexpr Count operator-(Count a, Count b) {
    return Count{a.value_ - b.value_};
  }
  friend constexpr Count operator*(Count a, u64 k) {
    return Count{a.value_ * k};
  }
  friend constexpr Count operator/(Count a, u64 k) {
    return Count{a.value_ / k};
  }
  friend std::ostream& operator<<(std::ostream& os, Count c) {
    return os << c.value_;
  }

 private:
  u64 value_ = 0;
};

struct CyclesTag {};
struct HwTicksTag {};
struct SwTicksTag {};

/// Simulated HW clock cycles (simulation kernel time base).
using Cycles = Count<CyclesTag>;
/// Pulses of the board's hardware timer.
using HwTicks = Count<HwTicksTag>;
/// RTOS software ticks (timer-ISR granularity; scheduling time base).
using SwTicks = Count<SwTicksTag>;

inline constexpr Cycles operator""_cyc(unsigned long long v) {
  return Cycles{static_cast<u64>(v)};
}
inline constexpr SwTicks operator""_swt(unsigned long long v) {
  return SwTicks{static_cast<u64>(v)};
}

}  // namespace vhp
