// Cooperative user-level execution contexts (fibers).
//
// Two subsystems need suspendable call stacks: the simulation kernel's
// thread processes (SystemC SC_THREADs suspend inside arbitrarily nested
// calls via wait()) and the RTOS threads of the virtual board (an eCos-like
// scheduler switches between thread stacks). Both are built on this class.
//
// Implementation: POSIX ucontext with an mmap'ed stack whose lowest page is
// PROT_NONE, so a stack overflow faults deterministically instead of
// corrupting a neighbouring fiber's stack.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>

#include <ucontext.h>

namespace vhp {

class Fiber {
 public:
  using Fn = std::function<void()>;

  static constexpr std::size_t kDefaultStackBytes = 128 * 1024;

  /// The fiber does not run until the first resume().
  explicit Fiber(Fn fn, std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Runs the fiber until it yields or its function returns. Must be called
  /// from outside the fiber (typically a scheduler). If the fiber's function
  /// exited with an exception, it is rethrown here, in the resumer.
  void resume();

  /// Suspends the currently running fiber, returning control to its last
  /// resumer. Must be called from inside a fiber.
  static void yield_to_resumer();

  /// True once the fiber's function has returned (or thrown).
  [[nodiscard]] bool finished() const { return finished_; }

  /// The fiber currently executing on this OS thread, or nullptr.
  static Fiber* current();

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void run_body();

  ucontext_t ctx_{};
  ucontext_t resumer_{};
  Fn fn_;
  std::exception_ptr exception_;
  void* mapping_ = nullptr;
  std::size_t mapping_size_ = 0;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace vhp
