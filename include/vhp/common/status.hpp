// Minimal Status / Result<T> error-handling vocabulary.
//
// The co-simulation stack crosses a process-like boundary (board thread vs
// simulation kernel) over sockets, so many operations can fail for
// environmental reasons that are not programming errors. Those paths return
// Status / Result instead of throwing; exceptions are reserved for
// programmer errors (caught by assertions in debug builds).
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace vhp {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,     // transient transport failure
  kDeadlineExceeded,
  kAborted,         // peer shut down / connection closed
  kConnectionReset, // peer reset the connection (ECONNRESET) — retryable by
                    // a recovery layer, unlike an orderly kAborted close
  kInternal,
};

[[nodiscard]] std::string_view to_string(StatusCode code);

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const Status& s) {
    return os << s.to_string();
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or a non-OK Status. Deliberately small: only what the transport
/// and protocol layers need.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace vhp
