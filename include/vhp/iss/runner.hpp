// ISS-on-board integration: runs RV32IM machine code as a board application
// thread, charging every retired instruction to the board's cycle budget.
//
// This is the "native ISS integration" refinement of the methodology (the
// authors' companion DATE'04 work): instead of annotating C++ application
// code with consume() calls, the software timing model is the instruction
// stream itself. The remote simulated device appears as an MMIO window, so
// firmware drives the co-simulated hardware with plain loads/stores.
//
// Syscall convention (ECALL, number in a7):
//   0: exit(a0)            — stop the firmware; a0 is the exit code
//   1: wfi                 — block until the device interrupt (DSR posts)
//   2: a0 = board tick     — read the SW tick counter
//   3: yield               — give up the CPU voluntarily
//   4: a0 = core id        — which virtual core runs this firmware (0 on a
//                            single-core board; SPMD firmware branches on it)
#pragma once

#include <atomic>

#include "vhp/board/board.hpp"
#include "vhp/iss/bus.hpp"
#include "vhp/iss/cpu.hpp"
#include "vhp/iss/timed_bus.hpp"
#include "vhp/mem/system.hpp"
#include "vhp/rtos/sync.hpp"

namespace vhp::iss {

struct IssRunnerConfig {
  u32 entry_pc = 0x1000;
  u32 stack_top = 0x0008'0000;
  int priority = 8;
  /// Runaway-firmware backstop.
  u64 max_instructions = 100'000'000;
  /// Device MMIO window: a load/store at mmio_base + A becomes a
  /// dev_read/dev_write at device address A.
  u32 mmio_base = 0xf000'0000;
  u32 mmio_size = 0x0001'0000;
  /// Extra cycles charged per device access (bus bridge cost).
  u64 mmio_access_cost = 10;
  /// Instructions batched per consume() charge (throughput/fidelity knob:
  /// preemption points happen at batch ends).
  u64 batch_cycles = 64;
  /// Board-thread name ("firmware/2" on a many-core board).
  std::string thread_name = "firmware";
};

class IssRunner {
 public:
  /// Spawns the firmware thread; the program must already be in `ram`.
  IssRunner(board::Board& board, sim::Memory& ram, IssRunnerConfig config);

  IssRunner(const IssRunner&) = delete;
  IssRunner& operator=(const IssRunner&) = delete;

  [[nodiscard]] Cpu& cpu() { return cpu_; }
  /// Safe to read from any host thread.
  [[nodiscard]] bool exited() const { return exited_.load(std::memory_order_acquire); }
  [[nodiscard]] u32 exit_code() const { return exit_code_; }
  [[nodiscard]] u64 instructions() const {
    return cpu_.instructions_retired();
  }

  /// Wire this to Board::attach_device_dsr: wakes a firmware blocked in
  /// the wfi syscall.
  void post_irq() { irq_sem_.post(); }

  /// Attaches a memory-hierarchy port (DESIGN.md §13): instruction cost
  /// switches from the flat StepResult cycles to the pipelined model —
  /// I-cache fetch latency, D-cache load/store latency, bank contention.
  /// Call before the board runs; MMIO accesses keep their flat bridge cost
  /// (they never traverse the cache hierarchy). Also pins the firmware
  /// thread to the port's core.
  void attach_memory(mem::CorePort& port);

  /// The firmware's board thread (for affinity/priority adjustments).
  [[nodiscard]] rtos::Thread& thread() { return *thread_; }

 private:
  void run_loop();
  /// Returns true to keep running.
  bool handle_ecall();

  [[nodiscard]] bool is_mmio(u32 addr) const {
    return addr >= config_.mmio_base &&
           addr - config_.mmio_base < config_.mmio_size;
  }

  board::Board& board_;
  IssRunnerConfig config_;
  Logger log_{"iss"};
  MemoryBus bus_;
  TimedBus timed_bus_{bus_};
  Cpu cpu_;
  mem::CorePort* mem_port_ = nullptr;
  rtos::Thread* thread_ = nullptr;
  rtos::Semaphore irq_sem_;
  std::atomic<bool> exited_{false};
  u32 exit_code_ = 0;
};

}  // namespace vhp::iss
