// Tiny RV32IM instruction encoder + two-pass assembler.
//
// Test programs and example firmware are written as C++ calls
// (`a.addi(1, 0, 42); a.beq(1, 2, loop);`) rather than a text assembly
// parser — the encoding is exactly RISC-V, labels resolve on build(), and
// the resulting word vector loads straight into the ISS bus memory.
#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "vhp/common/types.hpp"
#include "vhp/sim/memory.hpp"

namespace vhp::iss {

/// Raw RV32 instruction encoders (register numbers 0..31).
namespace enc {

constexpr u32 r_type(u32 funct7, u32 rs2, u32 rs1, u32 funct3, u32 rd,
                     u32 opcode) {
  return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
         (rd << 7) | opcode;
}
constexpr u32 i_type(i32 imm, u32 rs1, u32 funct3, u32 rd, u32 opcode) {
  return (static_cast<u32>(imm) << 20) | (rs1 << 15) | (funct3 << 12) |
         (rd << 7) | opcode;
}
constexpr u32 s_type(i32 imm, u32 rs2, u32 rs1, u32 funct3, u32 opcode) {
  const u32 u = static_cast<u32>(imm);
  return ((u >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
         ((u & 0x1f) << 7) | opcode;
}
constexpr u32 b_type(i32 imm, u32 rs2, u32 rs1, u32 funct3, u32 opcode) {
  const u32 u = static_cast<u32>(imm);
  return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25) | (rs2 << 20) |
         (rs1 << 15) | (funct3 << 12) | (((u >> 1) & 0xf) << 8) |
         (((u >> 11) & 1) << 7) | opcode;
}
constexpr u32 u_type(u32 imm20, u32 rd, u32 opcode) {
  return (imm20 << 12) | (rd << 7) | opcode;
}
constexpr u32 j_type(i32 imm, u32 rd, u32 opcode) {
  const u32 u = static_cast<u32>(imm);
  return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3ff) << 21) |
         (((u >> 11) & 1) << 20) | (((u >> 12) & 0xff) << 12) | (rd << 7) |
         opcode;
}

}  // namespace enc

/// Two-pass mini assembler with labels.
class Asm {
 public:
  using Label = std::size_t;

  /// Declares a label; bind it later with bind().
  Label make_label() {
    labels_.push_back(kUnbound);
    return labels_.size() - 1;
  }

  /// Binds `label` to the current position.
  void bind(Label label) {
    assert(labels_[label] == kUnbound && "label bound twice");
    labels_[label] = bytes();
  }

  /// Current offset in bytes from the program start.
  [[nodiscard]] u32 bytes() const {
    return static_cast<u32>(words_.size() * 4);
  }

  // ----- ALU -----
  void addi(u32 rd, u32 rs1, i32 imm) { emit(enc::i_type(imm, rs1, 0, rd, 0x13)); }
  void slti(u32 rd, u32 rs1, i32 imm) { emit(enc::i_type(imm, rs1, 2, rd, 0x13)); }
  void sltiu(u32 rd, u32 rs1, i32 imm) { emit(enc::i_type(imm, rs1, 3, rd, 0x13)); }
  void xori(u32 rd, u32 rs1, i32 imm) { emit(enc::i_type(imm, rs1, 4, rd, 0x13)); }
  void ori(u32 rd, u32 rs1, i32 imm) { emit(enc::i_type(imm, rs1, 6, rd, 0x13)); }
  void andi(u32 rd, u32 rs1, i32 imm) { emit(enc::i_type(imm, rs1, 7, rd, 0x13)); }
  void slli(u32 rd, u32 rs1, u32 sh) { emit(enc::i_type(static_cast<i32>(sh), rs1, 1, rd, 0x13)); }
  void srli(u32 rd, u32 rs1, u32 sh) { emit(enc::i_type(static_cast<i32>(sh), rs1, 5, rd, 0x13)); }
  void srai(u32 rd, u32 rs1, u32 sh) { emit(enc::i_type(static_cast<i32>(sh | 0x400), rs1, 5, rd, 0x13)); }
  void add(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(0, rs2, rs1, 0, rd, 0x33)); }
  void sub(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(0x20, rs2, rs1, 0, rd, 0x33)); }
  void sll(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(0, rs2, rs1, 1, rd, 0x33)); }
  void slt(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(0, rs2, rs1, 2, rd, 0x33)); }
  void sltu(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(0, rs2, rs1, 3, rd, 0x33)); }
  void xor_(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(0, rs2, rs1, 4, rd, 0x33)); }
  void srl(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(0, rs2, rs1, 5, rd, 0x33)); }
  void sra(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(0x20, rs2, rs1, 5, rd, 0x33)); }
  void or_(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(0, rs2, rs1, 6, rd, 0x33)); }
  void and_(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(0, rs2, rs1, 7, rd, 0x33)); }

  // ----- M extension -----
  void mul(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(1, rs2, rs1, 0, rd, 0x33)); }
  void mulh(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(1, rs2, rs1, 1, rd, 0x33)); }
  void mulhu(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(1, rs2, rs1, 3, rd, 0x33)); }
  void div(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(1, rs2, rs1, 4, rd, 0x33)); }
  void divu(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(1, rs2, rs1, 5, rd, 0x33)); }
  void rem(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(1, rs2, rs1, 6, rd, 0x33)); }
  void remu(u32 rd, u32 rs1, u32 rs2) { emit(enc::r_type(1, rs2, rs1, 7, rd, 0x33)); }

  // ----- upper immediates -----
  void lui(u32 rd, u32 imm20) { emit(enc::u_type(imm20, rd, 0x37)); }
  void auipc(u32 rd, u32 imm20) { emit(enc::u_type(imm20, rd, 0x17)); }
  /// Pseudo: load any 32-bit constant (lui+addi pair, always 2 words).
  void li(u32 rd, u32 value) {
    const u32 lo = value & 0xfff;
    u32 hi = value >> 12;
    if (lo >= 0x800) hi += 1;  // addi sign-extends; compensate
    lui(rd, hi & 0xfffff);
    addi(rd, rd, static_cast<i32>(lo << 20) >> 20);
  }

  // ----- memory -----
  void lb(u32 rd, u32 rs1, i32 off) { emit(enc::i_type(off, rs1, 0, rd, 0x03)); }
  void lh(u32 rd, u32 rs1, i32 off) { emit(enc::i_type(off, rs1, 1, rd, 0x03)); }
  void lw(u32 rd, u32 rs1, i32 off) { emit(enc::i_type(off, rs1, 2, rd, 0x03)); }
  void lbu(u32 rd, u32 rs1, i32 off) { emit(enc::i_type(off, rs1, 4, rd, 0x03)); }
  void lhu(u32 rd, u32 rs1, i32 off) { emit(enc::i_type(off, rs1, 5, rd, 0x03)); }
  void sb(u32 rs2, u32 rs1, i32 off) { emit(enc::s_type(off, rs2, rs1, 0, 0x23)); }
  void sh(u32 rs2, u32 rs1, i32 off) { emit(enc::s_type(off, rs2, rs1, 1, 0x23)); }
  void sw(u32 rs2, u32 rs1, i32 off) { emit(enc::s_type(off, rs2, rs1, 2, 0x23)); }

  // ----- control flow (label-targeted) -----
  void beq(u32 rs1, u32 rs2, Label t) { fixup(t, FixKind::kBranch, enc::b_type(0, rs2, rs1, 0, 0x63)); }
  void bne(u32 rs1, u32 rs2, Label t) { fixup(t, FixKind::kBranch, enc::b_type(0, rs2, rs1, 1, 0x63)); }
  void blt(u32 rs1, u32 rs2, Label t) { fixup(t, FixKind::kBranch, enc::b_type(0, rs2, rs1, 4, 0x63)); }
  void bge(u32 rs1, u32 rs2, Label t) { fixup(t, FixKind::kBranch, enc::b_type(0, rs2, rs1, 5, 0x63)); }
  void bltu(u32 rs1, u32 rs2, Label t) { fixup(t, FixKind::kBranch, enc::b_type(0, rs2, rs1, 6, 0x63)); }
  void bgeu(u32 rs1, u32 rs2, Label t) { fixup(t, FixKind::kBranch, enc::b_type(0, rs2, rs1, 7, 0x63)); }
  void jal(u32 rd, Label t) { fixup(t, FixKind::kJal, enc::j_type(0, rd, 0x6f)); }
  void j(Label t) { jal(0, t); }
  void jalr(u32 rd, u32 rs1, i32 off) { emit(enc::i_type(off, rs1, 0, rd, 0x67)); }
  void ret() { jalr(0, 1, 0); }

  // ----- system -----
  void ecall() { emit(0x00000073); }
  void ebreak() { emit(0x00100073); }
  void nop() { addi(0, 0, 0); }

  /// Resolves fixups; asserts every used label is bound.
  [[nodiscard]] std::vector<u32> build() const;

  /// Assembles and writes the program into `mem` at `base`.
  u32 load_into(sim::Memory& mem, u32 base) const;

 private:
  enum class FixKind { kBranch, kJal };
  struct Fixup {
    std::size_t word_index;
    Label label;
    FixKind kind;
  };

  static constexpr u32 kUnbound = 0xffffffffu;

  void emit(u32 word) { words_.push_back(word); }
  void fixup(Label label, FixKind kind, u32 scaffold) {
    fixups_.push_back(Fixup{words_.size(), label, kind});
    emit(scaffold);
  }

  std::vector<u32> words_;
  std::vector<u32> labels_;
  std::vector<Fixup> fixups_;
};

}  // namespace vhp::iss
