// Memory bus of the instruction-set simulator.
//
// The ISS is an alternative CPU model for the virtual board (the paper's
// companion work integrates an ISS the same way): instead of modeling
// software cost with consume() annotations, real machine code executes and
// every instruction is charged to the board's cycle budget. The bus decodes
// RAM (backed by the sparse sim::Memory) and memory-mapped I/O windows —
// the board module maps the remote simulated device there, so RV32 code
// drives the co-simulated hardware through plain loads and stores.
#pragma once

#include <functional>
#include <vector>

#include "vhp/common/types.hpp"
#include "vhp/sim/memory.hpp"

namespace vhp::iss {

class Bus {
 public:
  virtual ~Bus() = default;

  /// Zero-extended load of 1, 2 or 4 bytes.
  virtual u32 load(u32 addr, unsigned bytes) = 0;
  virtual void store(u32 addr, u32 value, unsigned bytes) = 0;
};

/// RAM + MMIO windows.
class MemoryBus final : public Bus {
 public:
  using LoadHandler = std::function<u32(u32 offset, unsigned bytes)>;
  using StoreHandler = std::function<void(u32 offset, u32 value,
                                          unsigned bytes)>;

  explicit MemoryBus(sim::Memory& ram) : ram_(ram) {}

  /// Maps [base, base+size) to handlers; later mappings win on overlap.
  void map_mmio(u32 base, u32 size, LoadHandler load, StoreHandler store) {
    mmio_.push_back(Window{base, size, std::move(load), std::move(store)});
  }

  u32 load(u32 addr, unsigned bytes) override {
    for (auto it = mmio_.rbegin(); it != mmio_.rend(); ++it) {
      if (addr >= it->base && addr - it->base < it->size) {
        return it->load ? it->load(addr - it->base, bytes) : 0;
      }
    }
    u32 v = 0;
    std::array<u8, 4> raw{};
    ram_.read(addr, std::span{raw.data(), bytes});
    for (unsigned i = 0; i < bytes; ++i) v |= static_cast<u32>(raw[i]) << (8 * i);
    return v;
  }

  void store(u32 addr, u32 value, unsigned bytes) override {
    for (auto it = mmio_.rbegin(); it != mmio_.rend(); ++it) {
      if (addr >= it->base && addr - it->base < it->size) {
        if (it->store) it->store(addr - it->base, value, bytes);
        return;
      }
    }
    std::array<u8, 4> raw{};
    for (unsigned i = 0; i < bytes; ++i) raw[i] = static_cast<u8>(value >> (8 * i));
    ram_.write(addr, std::span{raw.data(), bytes});
  }

 private:
  struct Window {
    u32 base;
    u32 size;
    LoadHandler load;
    StoreHandler store;
  };

  sim::Memory& ram_;
  std::vector<Window> mmio_;
};

}  // namespace vhp::iss
