// The many-core virtual board tier (DESIGN.md §13).
//
// MultiCoreBoard puts M ISS cores behind the board's memory hierarchy: one
// IssRunner per core, each pinned to its virtual core under the SMP kernel
// and attached to its mem::CorePort, so every core fetches through its own
// L1 I-cache, loads/stores through its own L1 D-cache, and contends with
// its siblings on the shared banked memory. All cores execute out of the
// same sim::Memory (shared-memory SMP) and share the one remote-device MMIO
// window; software partitions the address space (per-core entry points and
// descending stacks, exactly like firmware on real SMP parts).
//
// Requires a board built with BoardConfig::memory set and rtos.cores == the
// number of entry points (SessionConfigBuilder::cores(M).memory(...)).
#pragma once

#include <memory>
#include <vector>

#include "vhp/iss/runner.hpp"

namespace vhp::iss {

struct MultiCoreBoardConfig {
  /// Per-core firmware entry points; one core is instantiated per entry.
  /// All cores may share one entry (SPMD style; firmware reads its core id
  /// from the kCoreIdSyscall) or each get their own.
  std::vector<u32> entry_pcs;
  /// Template runner config. entry_pc and thread_name are overridden per
  /// core; stack_top descends by stack_stride per core so stacks never
  /// collide.
  IssRunnerConfig runner{};
  u32 stack_stride = 0x0001'0000;
};

class MultiCoreBoard {
 public:
  /// `board.memory_system()` must be non-null with at least
  /// `config.entry_pcs.size()` ports (asserted).
  MultiCoreBoard(board::Board& board, sim::Memory& ram,
                 MultiCoreBoardConfig config);

  MultiCoreBoard(const MultiCoreBoard&) = delete;
  MultiCoreBoard& operator=(const MultiCoreBoard&) = delete;

  [[nodiscard]] u32 cores() const { return static_cast<u32>(runners_.size()); }
  [[nodiscard]] IssRunner& core(u32 i) { return *runners_[i]; }
  [[nodiscard]] mem::MemorySystem& memory() { return *memory_; }

  /// True once every core's firmware has halted. Safe from any host thread.
  [[nodiscard]] bool all_exited() const {
    for (const auto& r : runners_) {
      if (!r->exited()) return false;
    }
    return true;
  }

  /// Wakes every core blocked in the wfi syscall — wire to
  /// Board::attach_device_dsr for a broadcast device interrupt.
  void post_irq_all() {
    for (const auto& r : runners_) r->post_irq();
  }

 private:
  std::vector<std::unique_ptr<IssRunner>> runners_;
  mem::MemorySystem* memory_;
};

}  // namespace vhp::iss
