// Access-recording bus decorator for the memory-hierarchy timing model.
//
// The Cpu performs at most two memory transactions per step: the fetch
// (always the first load of the step) and one data load or store. TimedBus
// forwards everything to the inner bus unchanged — it is purely functional
// pass-through — while recording which addresses the current instruction
// touched, so the runner can charge the pipeline/cache/bank timing model
// (vhp/mem) after the step retires. Without a memory hierarchy attached the
// record is simply ignored; the decorator costs two branches per access.
#pragma once

#include "vhp/iss/bus.hpp"

namespace vhp::iss {

class TimedBus final : public Bus {
 public:
  /// Memory transactions of one instruction, in issue order.
  struct Accesses {
    bool has_fetch = false;
    u32 fetch_addr = 0;
    bool has_data = false;
    u32 data_addr = 0;
    bool data_is_store = false;
  };

  explicit TimedBus(Bus& inner) : inner_(inner) {}

  /// Call before each Cpu::step(); the first load after this is the fetch.
  void begin_instruction() { acc_ = Accesses{}; }
  [[nodiscard]] const Accesses& accesses() const { return acc_; }

  u32 load(u32 addr, unsigned bytes) override {
    if (!acc_.has_fetch) {
      acc_.has_fetch = true;
      acc_.fetch_addr = addr;
    } else if (!acc_.has_data) {
      acc_.has_data = true;
      acc_.data_addr = addr;
      acc_.data_is_store = false;
    }
    return inner_.load(addr, bytes);
  }

  void store(u32 addr, u32 value, unsigned bytes) override {
    if (!acc_.has_data) {
      acc_.has_data = true;
      acc_.data_addr = addr;
      acc_.data_is_store = true;
    }
    inner_.store(addr, value, bytes);
  }

 private:
  Bus& inner_;
  Accesses acc_;
};

}  // namespace vhp::iss
