// RV32IM instruction-set simulator core.
//
// A deliberately simple interpreter: fetch, decode, execute, one call per
// instruction. Traps (ECALL/EBREAK/illegal/misaligned) are returned to the
// embedder rather than vectored, because the embedder here is the virtual
// board, which maps ECALL onto RTOS services (exit, wait-for-interrupt,
// tick queries — see vhp/iss/runner.hpp).
#pragma once

#include <array>

#include "vhp/common/types.hpp"
#include "vhp/iss/bus.hpp"

namespace vhp::iss {

enum class TrapKind : u8 {
  kNone = 0,
  kEcall,
  kEbreak,
  kIllegalInstruction,
  kMisalignedFetch,
};

struct StepResult {
  TrapKind trap = TrapKind::kNone;
  /// Modeled cost of the instruction in CPU cycles.
  u64 cycles = 1;
  /// The raw instruction word (diagnostics).
  u32 instruction = 0;
};

class Cpu {
 public:
  explicit Cpu(Bus& bus) : bus_(bus) {}

  /// x0 reads as zero always; writes to it are dropped.
  [[nodiscard]] u32 reg(unsigned i) const { return i == 0 ? 0 : x_[i]; }
  void set_reg(unsigned i, u32 v) {
    if (i != 0) x_[i] = v;
  }

  [[nodiscard]] u32 pc() const { return pc_; }
  void set_pc(u32 pc) { pc_ = pc; }

  [[nodiscard]] u64 instructions_retired() const { return retired_; }

  /// Executes one instruction. On ECALL/EBREAK the pc is already advanced
  /// past the trapping instruction (resume by just calling step again).
  /// On an illegal instruction the pc points AT the offender.
  StepResult step();

  /// RISC-V ABI register numbers used by the runner's syscall convention.
  static constexpr unsigned kRegRa = 1;
  static constexpr unsigned kRegSp = 2;
  static constexpr unsigned kRegA0 = 10;
  static constexpr unsigned kRegA1 = 11;
  static constexpr unsigned kRegA7 = 17;

 private:
  [[nodiscard]] static i32 sext(u32 value, unsigned bits) {
    const u32 shift = 32 - bits;
    return static_cast<i32>(value << shift) >> shift;
  }

  Bus& bus_;
  std::array<u32, 32> x_{};
  u32 pc_ = 0;
  u64 retired_ = 0;
};

}  // namespace vhp::iss
