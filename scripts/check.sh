#!/usr/bin/env bash
# Full local gate: build and test the release, asan and tsan presets back to
# back. The tsan run only selects suites labeled "tsan" in tests/CMakeLists.txt
# (fiber-free — ThreadSanitizer cannot follow ucontext stack switches).
#
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

for preset in default asan tsan; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$jobs"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" "$@"
done

# Fabric gate: the N-node barrier suites on their own, loudly. The full
# fabric set (-L fabric, matching "fabric" and "fabric-tsan") runs on the
# release build; the fiber-free half re-runs under ThreadSanitizer (the tsan
# preset's "tsan" filter intersected with -L fabric-tsan).
echo "==== [fabric] release gate ===="
ctest --preset default -L fabric "$@"
echo "==== [fabric] tsan gate ===="
ctest --preset tsan -L fabric-tsan "$@"

# Fault gate, same shape: the chaos soaks and fault unit suites on the
# release build (-L fault matches "fault" and "fault-tsan"), then the
# fiber-free fault suite again under ThreadSanitizer.
echo "==== [fault] release gate ===="
ctest --preset default -L fault "$@"
echo "==== [fault] tsan gate ===="
ctest --preset tsan -L fault-tsan "$@"

# Adaptive synchronization gate (ISSUE 6), same shape: the SyncPolicy /
# adaptive-coordinator and session parity suites (-L adaptive matches
# "adaptive" and "adaptive-tsan"), the fiber-free half under
# ThreadSanitizer, and the fabric_scale bench in --gate mode, which fails
# if the adaptive mean barrier wait at N=8 regresses above the fixed
# baseline.
echo "==== [adaptive] release gate ===="
ctest --preset default -L adaptive "$@"
echo "==== [adaptive] tsan gate ===="
ctest --preset tsan -L adaptive-tsan "$@"
echo "==== [adaptive] bench gate ===="
cmake --build --preset default -j "$jobs" --target fabric_scale
./build/bench/fabric_scale --gate --inproc --json /tmp/fabric_scale_gate.metrics.json

# Causal-timeline gate (ISSUE 7), same shape: the timeline suites plus the
# vhptrace CLI contract (-L timeline matches "timeline" and
# "timeline-tsan"), the fiber-free half under ThreadSanitizer, the
# timeline_overhead bench (--gate fails if a *disarmed* timeline costs more
# than 1% wall time), and a recorded fabric run driven through
# `vhptrace critical --gate 5` — the offline decomposition must reconcile
# with total fabric wall-clock within 5%.
echo "==== [timeline] release gate ===="
ctest --preset default -L timeline "$@"
echo "==== [timeline] tsan gate ===="
ctest --preset tsan -L timeline-tsan "$@"
echo "==== [timeline] bench gate ===="
cmake --build --preset default -j "$jobs" --target timeline_overhead fabric_scale vhptrace
./build/bench/timeline_overhead --gate --quick --json /tmp/timeline_overhead_gate.metrics.json
echo "==== [timeline] critical-path smoke ===="
rm -f /tmp/vhp_timeline_smoke.*.vhprec
./build/bench/fabric_scale --quick --inproc --record /tmp/vhp_timeline_smoke \
  --json /tmp/fabric_scale_record.metrics.json
./build/tools/vhptrace critical --gate 5 /tmp/vhp_timeline_smoke.hw.vhprec \
  /tmp/vhp_timeline_smoke.node*.board.vhprec

# Parallel-kernel gate (ISSUE 8), same shape: the differential fuzzer and
# session/fabric parity suites (-L kernel-par matches "kernel-par" and
# "kernel-par-tsan"), the fiber-free half — fuzzer, partitioner, island
# contract, worker pool — again under ThreadSanitizer, and the
# kernel_parallel bench in --gate mode: serial/parallel parity on the bench
# netlist, disarmed overhead under 1%, and (on hosts with >= 4 CPUs) at
# least 1.5x at 4 workers on the 32-port netlist.
echo "==== [kernel-par] release gate ===="
ctest --preset default -L kernel-par "$@"
echo "==== [kernel-par] tsan gate ===="
ctest --preset tsan -L kernel-par-tsan "$@"
echo "==== [kernel-par] bench gate ===="
cmake --build --preset default -j "$jobs" --target kernel_parallel
./build/bench/kernel_parallel --gate --quick --json /tmp/kernel_parallel_gate.metrics.json

# Memory-hierarchy / many-core gate (ISSUE 9), same shape: the fiber-free
# cache/bank/pipeline units plus the SMP kernel and 4-core session suites
# on the release build (-L mem matches "mem" and "mem-tsan"), the
# fiber-free half again under ThreadSanitizer, and the mem_contention
# bench in --gate mode, which fails if the disarmed single-core board
# costs more than 1% wall time over the pre-hierarchy flat loop.
echo "==== [mem] release gate ===="
ctest --preset default -L mem "$@"
echo "==== [mem] tsan gate ===="
ctest --preset tsan -L mem-tsan "$@"
echo "==== [mem] bench gate ===="
cmake --build --preset default -j "$jobs" --target mem_contention
./build/bench/mem_contention --gate --quick --json /tmp/mem_contention_gate.metrics.json

# Session-server gate (ISSUE 10), same shape: the shm-ring / batching /
# event-loop units plus the hosted-session parity suite on the release
# build (-L svc matches "svc" and "svc-tsan"), the fiber-free half again
# under ThreadSanitizer, and the session_density bench in --gate mode:
# 256 shm+batched sessions on one event-loop thread must complete at
# µs-level per-session quantum overhead, and board-side DATA batching on
# the sharded-router-with-telemetry workload must coalesce >= 4 frames
# per flush. The bench auto-skips its verdict on hosts with < 4 cores.
echo "==== [svc] release gate ===="
ctest --preset default -L svc "$@"
echo "==== [svc] tsan gate ===="
ctest --preset tsan -L svc-tsan "$@"
echo "==== [svc] bench gate ===="
cmake --build --preset default -j "$jobs" --target session_density
# No --quick: the gated rows are the 256-session ones.
./build/bench/session_density --gate --json /tmp/session_density_gate.metrics.json

echo "All presets passed."
