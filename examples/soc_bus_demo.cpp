// SoC interconnect demo (standalone simulation): two bus masters — a CPU
// bridge doing register programming and a DMA engine doing bulk transfers —
// contend for the shared on-chip bus in front of RAM and a peripheral
// register file. Shows the Bus substrate's address decoding, wait states
// and arbitration, and prints the contention statistics a designer would
// use to size the interconnect.
#include <cstdio>

#include "vhp/common/rng.hpp"
#include "vhp/sim/bus.hpp"
#include "vhp/sim/kernel.hpp"
#include "vhp/sim/module.hpp"

using namespace vhp;

namespace {

constexpr u32 kRamBase = 0x0000'0000;
constexpr u32 kRegBase = 0x4000'0000;

struct Soc : sim::Module {
  sim::Bus bus;
  sim::Memory ram{"soc.ram"};
  sim::MemoryBusTarget ram_target{ram, /*wait_states=*/1};
  sim::RegisterBusTarget regs;
  u64 cpu_ops = 0;
  u64 dma_words = 0;
  bool cpu_done = false;
  bool dma_done = false;

  explicit Soc(sim::Kernel& k)
      : Module(k, "soc"),
        bus(k, "soc.bus", {.clock_period = 2, .transfer_cycles = 2}),
        regs(16, [this](u32 index, u32 value) {
          if (index == 0 && value == 1) dma_kick = true;  // CTRL register
        }) {
    bus.map(kRamBase, 0x0010'0000, ram_target);
    bus.map(kRegBase, 0x40, regs);

    // Master 1: the CPU bridge — programs the peripheral, then does
    // scattered word accesses (cache-miss-ish traffic).
    thread("cpu", [this] {
      (void)bus.write(kRegBase + 0x4, 0x1000);   // DMA src
      (void)bus.write(kRegBase + 0x8, 0x8000);   // DMA dst
      (void)bus.write(kRegBase + 0xc, 256);      // DMA words
      (void)bus.write(kRegBase + 0x0, 1);        // CTRL: start
      Rng rng{11};
      for (int i = 0; i < 200; ++i) {
        const u32 addr = static_cast<u32>(4 * rng.below(0x400));
        if (rng.chance(0.5)) {
          (void)bus.write(addr, static_cast<u32>(rng.next()));
        } else {
          (void)bus.read(addr);
        }
        ++cpu_ops;
        sim::wait(rng.below(8));  // think time between accesses
      }
      cpu_done = true;
    });

    // Master 2: the DMA engine — waits for CTRL, then streams words,
    // hammering the bus back to back.
    thread("dma", [this] {
      while (!dma_kick) sim::wait(2);
      const u32 src = regs.peek(1);
      const u32 dst = regs.peek(2);
      const u32 n = regs.peek(3);
      for (u32 i = 0; i < n; ++i) {
        auto word = bus.read(src + 4 * i);
        if (!word.ok()) break;
        (void)bus.write(dst + 4 * i, word.value());
        ++dma_words;
      }
      (void)bus.write(kRegBase + 0x0, 2);  // CTRL: done
      dma_done = true;
    });
  }

  bool dma_kick = false;
};

}  // namespace

int main() {
  sim::Kernel kernel;
  Soc soc{kernel};

  // Seed the DMA source region so the copy is observable.
  for (u32 i = 0; i < 256; ++i) {
    soc.ram.write_u32(0x1000 + 4 * i, 0xbeef0000u + i);
  }

  kernel.run_to_completion();

  bool copy_ok = true;
  for (u32 i = 0; i < 256; ++i) {
    copy_ok &= soc.ram.read_u32(0x8000 + 4 * i) == 0xbeef0000u + i;
  }

  const auto& s = soc.bus.stats();
  std::printf("SoC bus demo: simulated %llu time units\n",
              (unsigned long long)kernel.now());
  std::printf("  cpu ops        %8llu\n", (unsigned long long)soc.cpu_ops);
  std::printf("  dma words      %8llu (copy %s)\n",
              (unsigned long long)soc.dma_words, copy_ok ? "ok" : "WRONG");
  std::printf("  bus reads      %8llu\n", (unsigned long long)s.reads);
  std::printf("  bus writes     %8llu\n", (unsigned long long)s.writes);
  std::printf("  contended      %8llu transactions (%.1f%%)\n",
              (unsigned long long)s.contended,
              100.0 * static_cast<double>(s.contended) /
                  static_cast<double>(s.reads + s.writes));
  return (copy_ok && soc.cpu_done && soc.dma_done) ? 0 : 1;
}
