// Firmware-level co-simulation: the board's software is RV32IM machine code
// executed by the instruction-set simulator, each instruction charged to
// the virtual-tick budget; the device under design is the increment device
// from quickstart.cpp, reached through a memory-mapped I/O window.
//
// The firmware (assembled below, no toolchain needed):
//
//     for (i = 0; i < 8; ++i) {
//       MMIO[REQ]  = seed;            // store -> DATA_PORT write
//       wfi();                        // ecall 1: wait for the device IRQ
//       r = MMIO[RESP];               // load  -> DATA_PORT read
//       ram[results + 4*i] = r;
//       seed = r * 3;
//     }
//     exit(ticks());                  // ecall 2 then ecall 0
#include <cstdio>

#include "vhp/cosim/session.hpp"
#include "vhp/iss/assemble.hpp"
#include "vhp/iss/runner.hpp"
#include "vhp/sim/module.hpp"

using namespace vhp;

namespace {

struct IncrementDevice : sim::Module {
  cosim::DriverIn<u32> request;
  cosim::DriverOut<u32> response;
  sim::BoolSignal& irq;
  u64 served = 0;

  IncrementDevice(cosim::CosimKernel& hw)
      : Module(hw.kernel(), "incr"),
        request(hw.kernel(), hw.registry(), "incr.request", 0x0),
        response(hw.registry(), "incr.response", 0x4),
        irq(make_bool_signal("irq")) {
    const sim::SimTime period = hw.config().clock_period;
    method("process",
           [this] {
             ++served;
             response.write(request.read() + 1);
             irq.write(true);
           })
        .sensitive(request.data_written_event())
        .dont_initialize();
    thread("clear", [this, period] {
      for (;;) {
        sim::wait(irq.posedge_event());
        sim::wait(2 * period);
        irq.write(false);
      }
    });
    hw.watch_interrupt(irq, board::Board::kDeviceVector);
  }
};

constexpr u32 kResults = 0x6000;
constexpr u32 kRounds = 8;

iss::Asm make_firmware() {
  iss::Asm a;
  const auto loop = a.make_label();
  a.li(5, 0xf0000000u);  // t0 = MMIO base
  a.li(6, kResults);     // t1 = results array
  a.addi(7, 0, kRounds); // t2 = remaining rounds
  a.li(28, 11);          // t3 = seed
  a.bind(loop);
  a.sw(28, 5, 0x0);      // request = seed
  a.addi(17, 0, 1);      // a7 = wfi
  a.ecall();
  a.lw(29, 5, 0x4);      // t4 = response
  a.sw(29, 6, 0);        // *results++ = response
  a.addi(6, 6, 4);
  a.addi(30, 0, 3);      // seed = response * 3
  a.mul(28, 29, 30);
  a.addi(7, 7, -1);
  a.bne(7, 0, loop);
  a.addi(17, 0, 2);      // a7 = read board ticks -> a0
  a.ecall();
  a.addi(17, 0, 0);      // exit(ticks)
  a.ecall();
  return a;
}

}  // namespace

int main() {
  cosim::SessionConfig cfg;
  cfg.transport = cosim::TransportKind::kTcp;
  cfg.cosim.t_sync = 100;
  cfg.board.rtos.cycles_per_tick = 10;
  cosim::CosimSession session{cfg};

  IncrementDevice device{session.hw()};

  sim::Memory ram{"board.ram"};
  make_firmware().load_into(ram, 0x1000);

  iss::IssRunnerConfig rc;
  rc.entry_pc = 0x1000;
  rc.mmio_access_cost = 20;
  iss::IssRunner runner{session.board(), ram, rc};
  session.board().attach_device_dsr([&](u32) { runner.post_irq(); });

  session.start_board();
  for (int chunk = 0; chunk < 4000 && !runner.exited(); ++chunk) {
    if (!session.run_cycles(100).ok()) break;
  }
  session.finish();

  std::printf("firmware retired %llu instructions; device served %llu "
              "requests; board ticks at exit: %u\n\n",
              (unsigned long long)runner.instructions(),
              (unsigned long long)device.served, runner.exit_code());
  u32 expect = 11;
  bool all_ok = true;
  for (u32 i = 0; i < kRounds; ++i) {
    const u32 got = ram.read_u32(kResults + 4 * i);
    const u32 want = expect + 1;
    std::printf("  round %u: device(%u) -> %u %s\n", i, expect, got,
                got == want ? "ok" : "WRONG");
    all_ok &= (got == want);
    expect = want * 3;
  }
  return all_ok && runner.exited() ? 0 : 1;
}
