// Motion-control scenario — the paper's application domain (factory
// automation on the Ultimodule SCM2x0).
//
// Device under design: a motor-drive block for the FPGA — PWM output stage
// plus quadrature-encoder counter — modeled in the HDL kernel together with
// a simple first-order motor plant. The control software (a PI speed loop)
// runs on the board under the RTOS, reading the encoder and writing the
// duty cycle through the driver at a fixed control period.
//
// Because the co-simulation is timed, the loop's sampling period in board
// ticks and the plant's evolution in clock cycles stay aligned — the whole
// point of the virtual tick. The example prints the speed trajectory and
// the settling behaviour a designer would use to size the real hardware.
#include <atomic>
#include <cstdio>
#include <vector>

#include "vhp/cosim/session.hpp"
#include "vhp/sim/module.hpp"

using namespace vhp;

namespace {

constexpr u32 kRegDuty = 0x00;     // board -> HW: PWM duty, 0..1000
constexpr u32 kRegEncoder = 0x10;  // HW -> board: encoder count

/// Motor drive + plant. Plant model (per clock cycle, fixed point x1000):
///   speed += (duty * kGain - speed * kFriction) >> kShift
/// The encoder accumulates speed; the board reads it through the driver.
struct MotorDrive : sim::Module {
  cosim::DriverIn<u32> duty;
  cosim::DriverOut<u32> encoder;

  i64 speed_milli = 0;  // counts per 1000 cycles
  i64 encoder_acc_milli = 0;
  u32 encoder_count = 0;

  MotorDrive(cosim::CosimKernel& hw)
      : Module(hw.kernel(), "motor"),
        duty(hw.kernel(), hw.registry(), "motor.duty", kRegDuty),
        encoder(hw.registry(), "motor.encoder", kRegEncoder) {
    method("plant",
           [this] {
             const i64 d = duty.read();
             // First-order lag: gain 40, friction 8 (per mille per cycle).
             speed_milli += (d * 40 - speed_milli * 8) / 1000;
             encoder_acc_milli += speed_milli;
             encoder_count += static_cast<u32>(encoder_acc_milli / 1000);
             encoder_acc_milli %= 1000;
             encoder.write(encoder_count);
           })
        .sensitive(hw.clock().posedge_event())
        .dont_initialize();
  }
};

}  // namespace

int main() {
  const auto cfg = cosim::SessionConfigBuilder{}
                       .tcp()
                       .t_sync(100)
                       .cycles_per_tick(10)  // 1 board tick = 10 clock cycles
                       .build_or_throw();
  cosim::CosimSession session{cfg};

  MotorDrive motor{session.hw()};

  auto& board = session.board();
  constexpr i64 kTarget = 4000;     // speed setpoint (milli-counts/cycle)
  constexpr u64 kPeriodTicks = 20;  // control period: 200 clock cycles
  constexpr int kSteps = 40;

  std::vector<i64> trajectory;
  std::atomic<bool> finished{false};

  board.spawn_app("pi_controller", 8, [&] {
    u32 prev_count = 0;
    i64 integral = 0;
    u32 current_duty = 0;
    for (int step = 0; step < kSteps; ++step) {
      board.kernel().delay(SwTicks{kPeriodTicks});
      auto enc = board.dev_read(kRegEncoder, 4);
      if (!enc.ok()) break;
      u32 count = 0;
      (void)cosim::DriverCodec<u32>::decode(enc.value(), count);
      // Speed estimate over the period: counts per 1000 cycles.
      const i64 speed =
          static_cast<i64>(count - prev_count) * 1000 /
          static_cast<i64>(kPeriodTicks * 10);
      prev_count = count;
      trajectory.push_back(speed);

      // PI law (fixed point): u = Kp*e/256 + Ki*integral/4096, clamped.
      const i64 error = kTarget - speed;
      integral += error;
      i64 u = (error * 24) / 256 + (integral * 160) / 4096;
      u = std::clamp<i64>(u, 0, 1000);
      if (static_cast<u32>(u) != current_duty) {
        current_duty = static_cast<u32>(u);
        (void)board.dev_write(kRegDuty,
                              cosim::DriverCodec<u32>::encode(current_duty));
      }
      board.kernel().consume(80);  // control-law computation cost
    }
    finished = true;
  });

  session.start_board();
  for (int chunk = 0; chunk < 6000 && !finished; ++chunk) {
    if (!session.run_cycles(100).ok()) break;
  }
  session.finish();

  std::printf("PI speed loop: target %lld, %d control periods of %llu "
              "ticks\n\n", (long long)kTarget, kSteps,
              (unsigned long long)kPeriodTicks);
  std::printf("%6s %10s  %s\n", "step", "speed", "");
  i64 settled_at = -1;
  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    const i64 s = trajectory[i];
    const int bar = static_cast<int>(std::clamp<i64>(s / 80, 0, 70));
    std::printf("%6zu %10lld  %.*s\n", i, (long long)s, bar,
                "######################################################"
                "################");
    if (settled_at < 0 && s > kTarget * 95 / 100 && s < kTarget * 105 / 100) {
      settled_at = static_cast<i64>(i);
    }
  }
  if (settled_at >= 0) {
    std::printf("\nsettled to +/-5%% of target after %lld control periods "
                "(%lld clock cycles)\n",
                (long long)settled_at,
                (long long)settled_at * (i64)kPeriodTicks * 10);
  } else {
    std::printf("\ndid not settle within the run\n");
  }
  const bool converged =
      !trajectory.empty() &&
      trajectory.back() > kTarget * 90 / 100 &&
      trajectory.back() < kTarget * 110 / 100;
  return converged ? 0 : 1;
}
