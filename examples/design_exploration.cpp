// Design exploration (the paper's Section 6 closing remark, as a designer
// would actually run it): sweep the synchronization interval T_sync, watch
// accuracy fall and speed rise, and pick the best trade-off for the router
// device before committing it to the FPGA.
//
// Usage: design_exploration [n_packets]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "vhp/cosim/session.hpp"
#include "vhp/router/checksum_app.hpp"
#include "vhp/router/testbench.hpp"

using namespace vhp;

namespace {

struct Sample {
  u64 t_sync;
  double seconds;
  double accuracy;
};

Sample explore(u64 t_sync, u64 n_packets) {
  const auto cfg = cosim::SessionConfigBuilder{}
                       .tcp()
                       .t_sync(t_sync)
                       .cycles_per_tick(10)
                       .build_or_throw();
  cosim::CosimSession session{cfg};

  router::TestbenchConfig tb_cfg;
  tb_cfg.router.remote_checksum = true;
  tb_cfg.router.buffer_depth = 4;
  tb_cfg.packets_per_port = n_packets / 4;
  tb_cfg.gap_cycles = 4000;
  router::RouterTestbench tb{session.hw().kernel(), tb_cfg,
                             &session.hw().registry()};
  session.hw().watch_interrupt(tb.router().irq(),
                               board::Board::kDeviceVector);
  router::ChecksumAppConfig app_cfg;
  app_cfg.cost_base = 20;
  app_cfg.cost_per_byte = 1;
  router::ChecksumApp app{session.board(), app_cfg};

  session.start_board();
  const auto start = std::chrono::steady_clock::now();
  u64 cycles = 0;
  while (cycles < 1500000 && !tb.traffic_done()) {
    if (!session.run_cycles(200).ok()) break;
    cycles += 200;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  session.finish();
  const double acc =
      tb.total_emitted() == 0
          ? 1.0
          : static_cast<double>(tb.router().stats().forwarded) /
                static_cast<double>(tb.total_emitted());
  return {t_sync, secs, acc};
}

}  // namespace

int main(int argc, char** argv) {
  const u64 n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40;
  std::printf("design exploration over T_sync (N=%llu packets)\n\n",
              (unsigned long long)n);
  std::printf("%10s %12s %10s %10s  %s\n", "Tsync", "wall time", "speedup",
              "accuracy", "verdict");

  const std::vector<u64> sweep{10, 100, 500, 1000, 2000, 5000, 10000};
  std::vector<Sample> samples;
  samples.reserve(sweep.size());
  for (u64 ts : sweep) samples.push_back(explore(ts, n));

  double slowest = 0;
  for (const auto& s : samples) slowest = std::max(slowest, s.seconds);
  double best_score = -1;
  u64 best_ts = 0;
  for (const auto& s : samples) {
    const double speedup = slowest / s.seconds;
    const double score = s.accuracy * speedup;
    const bool better = score > best_score;
    if (better) {
      best_score = score;
      best_ts = s.t_sync;
    }
    std::printf("%10llu %11.4fs %9.1fx %9.1f%%  %s\n",
                (unsigned long long)s.t_sync, s.seconds, speedup,
                100.0 * s.accuracy,
                s.accuracy >= 0.999 ? "full accuracy" : "losing packets");
  }
  std::printf("\nchosen synchronization interval: T_sync=%llu\n",
              (unsigned long long)best_ts);
  std::printf("(maximizes accuracy x speedup = %.1f; see bench/opt_tsync "
              "for the full methodology)\n", best_score);
  return 0;
}
