// Standalone RTOS demo: the eCos-like kernel of the virtual board without
// any co-simulation — threads, priorities, timeslicing, mutexes, mailboxes,
// alarms and the ISR/DSR path, with virtual time free-running.
#include <cstdio>
#include <string>

#include "vhp/rtos/kernel.hpp"
#include "vhp/rtos/mailbox.hpp"
#include "vhp/rtos/sync.hpp"

using namespace vhp;
using namespace vhp::rtos;

int main() {
  KernelConfig cfg;
  cfg.cycles_per_tick = 100;  // 100 CPU cycles per SW tick
  cfg.timeslice_ticks = 5;
  Kernel k{cfg};

  auto stamp = [&](const char* who, const std::string& what) {
    std::printf("[tick %5llu] %-10s %s\n",
                (unsigned long long)k.tick_count().value(), who,
                what.c_str());
  };

  // A sensor "driver": a periodic alarm plays the role of the hardware
  // timer interrupt; its DSR-style handler posts samples into a mailbox.
  Mailbox<u64> samples{k, 8};
  Alarm sensor{k.real_time_clock(), [&](Alarm&, u64 now) {
                 (void)samples.try_put(now * now % 997);
               }};
  sensor.arm_in(10, /*period=*/10);

  // Consumer thread: drains samples, does some "processing" work.
  k.spawn("consumer", 6, [&] {
    for (int i = 0; i < 8; ++i) {
      auto v = samples.get_ticks(SwTicks{500});
      if (!v) break;
      stamp("consumer", "sample " + std::to_string(*v));
      k.consume(150);  // processing cost
    }
    sensor.disarm();
    stamp("consumer", "done");
  });

  // Two compute hogs at equal priority: timeslicing interleaves them.
  Mutex log_mu{k};
  for (int id = 0; id < 2; ++id) {
    k.spawn("hog" + std::to_string(id), 9, [&, id] {
      for (int chunk = 0; chunk < 3; ++chunk) {
        k.consume(500);  // one timeslice
        MutexLock lock{log_mu};
        stamp("hog", std::to_string(id) + " finished chunk " +
                         std::to_string(chunk));
      }
    });
  }

  // A software interrupt exercising the ISR/DSR path.
  Semaphore irq_seen{k, 0};
  k.interrupts().attach(
      9, InterruptHandler{[&](u32) { return IsrResult::kCallDsr; },
                          [&](u32) { irq_seen.post(); }});
  k.spawn("irq_waiter", 5, [&] {
    irq_seen.wait();
    stamp("irq", "DSR woke the handler thread");
  });
  k.spawn("irq_raiser", 7, [&] {
    k.delay(SwTicks{25});
    stamp("irq", "raising vector 9");
    k.interrupts().raise(9);
  });

  k.run(/*until_quiescent=*/true);

  std::printf("\nkernel stats: %llu ticks, %llu context switches, "
              "%llu idle cycles\n",
              (unsigned long long)k.stats().ticks,
              (unsigned long long)k.stats().context_switches,
              (unsigned long long)k.stats().idle_cycles);
  return 0;
}
