// Minimal flag scanning shared by the examples.
//
// The examples spell the paper's experiment knobs as positional arguments
// and a handful of common "--name value" / "--name" options (--obs,
// --metrics-json, --record, ...). This keeps the parsing in one place
// without pulling in a real CLI library.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "vhp/common/types.hpp"

namespace vhp::examples {

class ArgList {
 public:
  ArgList(int argc, char** argv) : args_(argv + 1, argv + argc) {}

  /// Removes "--name <value>" and returns the value; nullopt if absent.
  std::optional<std::string> take_value(std::string_view name) {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) {
        std::string value = args_[i + 1];
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i),
                    args_.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        return value;
      }
    }
    return std::nullopt;
  }

  /// Removes a bare "--name"; true if it was present.
  bool take_flag(std::string_view name) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == name) {
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  /// What remains after the takes: the positional arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return args_;
  }

  /// Positional argument `index` as u64, or `fallback` when absent.
  [[nodiscard]] u64 positional_u64(std::size_t index, u64 fallback) const {
    if (index >= args_.size()) return fallback;
    return std::strtoull(args_[index].c_str(), nullptr, 10);
  }

 private:
  std::vector<std::string> args_;
};

}  // namespace vhp::examples
