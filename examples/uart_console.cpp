// UART console scenario: the device under design is a serial port for the
// FPGA, modeled with real 8N1 line timing. The board boots, prints its
// banner through the co-simulated UART, and runs a command loop that a
// "terminal" (a serial stimulus on the HDL side) is typing into. A
// logic-analyzer sniffer on the tx pin decodes what the board printed,
// exactly as a scope on the real pin would.
// Usage: uart_console [--obs] [--metrics-json path]
#include <cstdio>

#include "cli.hpp"
#include "vhp/cosim/session.hpp"
#include "vhp/devices/uart.hpp"
#include "vhp/devices/uart_driver.hpp"

using namespace vhp;

int main(int argc, char** argv) {
  examples::ArgList args{argc, argv};
  const bool obs_on = args.take_flag("--obs");
  const auto metrics_path = args.take_value("--metrics-json");

  const auto cfg = cosim::SessionConfigBuilder{}
                       .tcp()
                       .t_sync(100)
                       .cycles_per_tick(10)
                       .observability(obs_on || metrics_path.has_value())
                       .build_or_throw();
  cosim::CosimSession session{cfg};

  devices::UartModel::Config uart_cfg;
  uart_cfg.fifo_depth = 32;
  devices::UartModel uart{session.hw(), "uart0", uart_cfg};
  session.hw().watch_interrupt(uart.irq(), board::Board::kDeviceVector);
  devices::SerialSniffer scope{session.hw().kernel(), "scope", uart.tx(),
                               uart.divisor(), 2};
  devices::SerialDriver terminal{session.hw().kernel(), "terminal",
                                 uart.rx(), uart.divisor(), 2,
                                 /*gap_bits=*/40};
  terminal.queue_text("status\n");
  terminal.queue_text("ticks\n");
  terminal.queue_text("quit\n");

  auto& board = session.board();
  devices::UartDriver tty{board};
  bool halted = false;
  board.spawn_app("shell", 8, [&] {
    (void)tty.write_text("vhp board console\n");
    for (;;) {
      auto line = tty.read_line();
      if (!line.ok()) return;
      const std::string& cmd = line.value();
      board.kernel().consume(100);  // command dispatch cost
      if (cmd == "status\n") {
        (void)tty.write_text("ok: all systems nominal\n");
      } else if (cmd == "ticks\n") {
        (void)tty.write_text(
            "ticks: " +
            std::to_string(board.kernel().tick_count().value()) + "\n");
      } else if (cmd == "quit\n") {
        (void)tty.write_text("bye\n");
        halted = true;
        return;
      } else {
        (void)tty.write_text("err: unknown command\n");
      }
    }
  });

  session.start_board();
  for (int chunk = 0; chunk < 6000 && !halted; ++chunk) {
    if (!session.run_cycles(100).ok()) break;
  }
  // Drain the last frames onto the wire for the sniffer.
  (void)session.run_cycles(3000);
  session.finish();

  std::printf("--- decoded from the tx pin (%zu bytes, %llu framing "
              "errors) ---\n",
              scope.received().size(),
              (unsigned long long)scope.framing_errors());
  std::fwrite(scope.received().data(), 1, scope.received().size(), stdout);
  std::printf("--- uart stats: %llu tx, %llu rx, %llu overflows ---\n",
              (unsigned long long)uart.stats().bytes_tx,
              (unsigned long long)uart.stats().bytes_rx,
              (unsigned long long)(uart.stats().tx_overflows +
                                   uart.stats().rx_overflows));
  if (metrics_path.has_value()) {
    Status ms = session.write_metrics_json(*metrics_path);
    std::printf("wrote %s (%s)\n", metrics_path->c_str(),
                ms.ok() ? "ok" : ms.to_string().c_str());
  }
  return halted && scope.framing_errors() == 0 ? 0 : 1;
}
