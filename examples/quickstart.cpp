// Quickstart: the smallest complete co-simulation.
//
// Hardware side: a device-under-design with one input register (address 0)
// and one output register (address 4); writing X publishes X+1 and pulses
// the interrupt line. Software side: an application thread on the virtual
// board that drives the device through its driver, synchronized with the
// simulation through virtual ticks.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "vhp/cosim/session.hpp"
#include "vhp/rtos/sync.hpp"
#include "vhp/sim/module.hpp"

using namespace vhp;

namespace {

/// The hardware model (what you would later synthesize to the FPGA).
struct IncrementDevice : sim::Module {
  cosim::DriverIn<u32> request;
  cosim::DriverOut<u32> response;
  sim::BoolSignal& irq;

  IncrementDevice(cosim::CosimKernel& hw)
      : Module(hw.kernel(), "incr"),
        request(hw.kernel(), hw.registry(), "incr.request", 0x0),
        response(hw.registry(), "incr.response", 0x4),
        irq(make_bool_signal("irq")) {
    const sim::SimTime period = hw.config().clock_period;
    // The paper's "driver process": triggered whenever the driver writes.
    method("process",
           [this] {
             response.write(request.read() + 1);
             irq.write(true);
           })
        .sensitive(request.data_written_event())
        .dont_initialize();
    thread("irq_clear", [this, period] {
      for (;;) {
        sim::wait(irq.posedge_event());
        sim::wait(2 * period);
        irq.write(false);
      }
    });
    hw.watch_interrupt(irq, board::Board::kDeviceVector);
  }
};

}  // namespace

int main() {
  // 1. Wire the two sides together (TCP loopback, as in the paper's setup).
  const auto cfg = cosim::SessionConfigBuilder{}
                       .tcp()
                       .t_sync(100)  // synchronize every 100 clock cycles
                       .build_or_throw();
  cosim::CosimSession session{cfg};

  // 2. Build the HDL model against the (modified) simulation kernel.
  IncrementDevice device{session.hw()};

  // 3. Put the software on the board: DSR + application thread.
  auto& board = session.board();
  rtos::Semaphore reply_ready{board.kernel(), 0};
  board.attach_device_dsr([&](u32) { reply_ready.post(); });

  int replies = 0;
  board.spawn_app("app", 8, [&] {
    for (u32 i = 0; i < 5; ++i) {
      const u32 x = i * 10;
      (void)board.dev_write(0x0, cosim::DriverCodec<u32>::encode(x));
      reply_ready.wait();
      auto resp = board.dev_read(0x4, 4);
      u32 y = 0;
      if (resp.ok() && cosim::DriverCodec<u32>::decode(resp.value(), y)) {
        std::printf("[board tick %4llu] device(%2u) -> %2u\n",
                    (unsigned long long)board.kernel().tick_count().value(),
                    x, y);
        ++replies;
      }
      board.kernel().consume(200);  // model some follow-up work
    }
  });

  // 4. Run the timed co-simulation.
  session.start_board();
  for (int chunk = 0; chunk < 200 && replies < 5; ++chunk) {
    if (!session.run_cycles(100).ok()) break;
  }
  session.finish();

  std::printf("\nsimulated %llu cycles, %llu syncs, %llu interrupts\n",
              (unsigned long long)session.hw().cycle(),
              (unsigned long long)session.hw().stats().syncs,
              (unsigned long long)session.hw().stats().interrupts_sent);
  return replies == 5 ? 0 : 1;
}
