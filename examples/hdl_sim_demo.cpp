// Standalone HDL simulation demo: the router model simulated entirely in
// the discrete-event kernel (checksum verified locally, no board), with a
// VCD waveform dumped for inspection — the "pure hardware simulator" half
// of the methodology.
#include <cstdio>

#include "vhp/router/testbench.hpp"
#include "vhp/sim/trace.hpp"

using namespace vhp;

int main() {
  sim::Kernel kernel;

  router::TestbenchConfig cfg;
  cfg.router.remote_checksum = false;  // local checksum: no board needed
  cfg.router.buffer_depth = 4;
  cfg.packets_per_port = 25;
  cfg.gap_cycles = 50;
  cfg.payload_bytes = 32;
  cfg.corrupt_probability = 0.2;
  router::RouterTestbench tb{kernel, cfg};

  // Waveform: the router's interrupt line and a clock, viewable with any
  // VCD viewer (gtkwave router_sim.vcd).
  sim::Clock clk{kernel, "clk", cfg.router.clock_period};
  sim::VcdWriter vcd{kernel, "router_sim.vcd"};
  vcd.trace(clk, "clk");
  vcd.trace(tb.router().irq(), "router_irq");

  u64 steps = 0;
  while (steps < 1000000 && !tb.traffic_done()) {
    kernel.run(1000);
    steps += 1000;
  }
  vcd.close();

  const auto& s = tb.router().stats();
  std::printf("simulated %llu time units (%llu deltas)\n",
              (unsigned long long)kernel.now(),
              (unsigned long long)kernel.delta_count());
  std::printf("emitted    %6llu\n", (unsigned long long)tb.total_emitted());
  std::printf("forwarded  %6llu\n", (unsigned long long)s.forwarded);
  std::printf("bad cksum  %6llu\n",
              (unsigned long long)s.dropped_bad_checksum);
  std::printf("buffer drop%6llu\n",
              (unsigned long long)s.dropped_input_full);
  std::printf("received   %6llu\n", (unsigned long long)tb.total_received());
  std::printf("waveform written to router_sim.vcd\n");
  return tb.traffic_done() ? 0 : 1;
}
