// The paper's full case study (Section 6): a 4-port packet router modeled
// in the HDL kernel, verified against the checksum application running on
// the virtual board under the RTOS, over TCP loopback with virtual-tick
// synchronization.
//
// Usage: router_cosim [t_sync] [n_packets]
//
// Also reproduces the paper's Figure 2/4 timeline: the first OS state
// transitions of the board (normal <-> idle around each virtual tick) are
// recorded and printed. The run executes with full observability on and
// leaves two artifacts next to the binary's working directory:
//   router_cosim.trace.json    — Chrome trace_event timeline
//                                (open in chrome://tracing or Perfetto)
//   router_cosim.metrics.json  — all counters/gauges/histograms of the run
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "vhp/cosim/session.hpp"
#include "vhp/router/checksum_app.hpp"
#include "vhp/router/testbench.hpp"

using namespace vhp;

int main(int argc, char** argv) {
  const u64 t_sync = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
  const u64 n_packets = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100;

  std::printf("router co-simulation: T_sync=%llu, N=%llu packets\n\n",
              (unsigned long long)t_sync, (unsigned long long)n_packets);

  const auto cfg = cosim::SessionConfigBuilder{}
                       .tcp()
                       .t_sync(t_sync)
                       .cycles_per_tick(10)
                       .observability()
                       .build_or_throw();
  cosim::CosimSession session{cfg};

  router::TestbenchConfig tb_cfg;
  tb_cfg.router.remote_checksum = true;
  tb_cfg.router.buffer_depth = 4;
  tb_cfg.packets_per_port = n_packets / 4;
  tb_cfg.gap_cycles = 8000;  // feasible at the default T_sync (cf. Figure 7)
  tb_cfg.payload_bytes = 32;
  tb_cfg.corrupt_probability = 0.1;  // exercise the drop path too
  router::RouterTestbench tb{session.hw().kernel(), tb_cfg,
                             &session.hw().registry()};
  session.hw().watch_interrupt(tb.router().irq(),
                               board::Board::kDeviceVector);

  router::ChecksumAppConfig app_cfg;
  app_cfg.cost_base = 20;
  app_cfg.cost_per_byte = 1;
  router::ChecksumApp app{session.board(), app_cfg};

  // Figure 2/4 timeline: record the first OS state switches. The trace
  // callback runs on the board thread; guard the vector.
  std::mutex timeline_mu;
  std::vector<std::pair<rtos::OsState, u64>> timeline;
  session.board().kernel().set_state_trace(
      [&](rtos::OsState state, SwTicks tick) {
        std::scoped_lock lock(timeline_mu);
        if (timeline.size() < 12) timeline.emplace_back(state, tick.value());
      });

  session.start_board();
  u64 cycles = 0;
  while (cycles < 2000000 && !tb.traffic_done()) {
    if (!session.run_cycles(500).ok()) break;
    cycles += 500;
  }
  session.finish();

  const auto& rs = tb.router().stats();
  std::printf("--- HDL model (simulation kernel) ---------------------\n");
  std::printf("cycles simulated        %10llu\n",
              (unsigned long long)session.hw().cycle());
  std::printf("packets emitted         %10llu\n",
              (unsigned long long)tb.total_emitted());
  std::printf("accepted into buffers   %10llu\n",
              (unsigned long long)rs.accepted);
  std::printf("dropped (buffer full)   %10llu\n",
              (unsigned long long)rs.dropped_input_full);
  std::printf("dropped (bad checksum)  %10llu\n",
              (unsigned long long)rs.dropped_bad_checksum);
  std::printf("forwarded               %10llu\n",
              (unsigned long long)rs.forwarded);
  std::printf("received by consumers   %10llu\n",
              (unsigned long long)tb.total_received());
  std::printf("accuracy                %9.1f%%\n",
              100.0 * tb.forward_ratio());
  std::printf("--- board (RTOS) ---------------------------------------\n");
  const auto& bk = session.board().kernel();
  std::printf("SW ticks                %10llu\n",
              (unsigned long long)bk.tick_count().value());
  std::printf("checksums computed      %10llu (%llu rejected)\n",
              (unsigned long long)app.processed(),
              (unsigned long long)app.rejected());
  std::printf("context switches        %10llu\n",
              (unsigned long long)bk.stats().context_switches);
  std::printf("freezes / grants        %10llu / %llu\n",
              (unsigned long long)bk.stats().freezes,
              (unsigned long long)bk.stats().grants);
  std::printf("--- OS state timeline (paper Figure 2/4, first switches) -\n");
  {
    std::scoped_lock lock(timeline_mu);
    for (const auto& [state, tick] : timeline) {
      std::printf("  tick %6llu  -> %s\n", (unsigned long long)tick,
                  state == rtos::OsState::kIdle
                      ? "IDLE   (frozen, TIME_ACK sent; comm threads only)"
                      : "NORMAL (CLOCK_TICK received, budget granted)");
    }
  }
  std::printf("--- link ------------------------------------------------\n");
  std::printf("sync round trips        %10llu\n",
              (unsigned long long)session.hw().stats().syncs);
  std::printf("interrupts sent         %10llu\n",
              (unsigned long long)session.hw().stats().interrupts_sent);
  std::printf("driver writes / reads   %10llu / %llu\n",
              (unsigned long long)session.hw().stats().data_writes,
              (unsigned long long)session.hw().stats().data_reads);
  std::printf("--- observability ---------------------------------------\n");
  auto& hub = session.obs();
  std::printf("trace events            %10zu (%llu dropped)\n",
              hub.tracer().event_count(),
              (unsigned long long)hub.tracer().dropped());
  std::printf("sync RTT mean           %12.1f us\n",
              hub.metrics().histogram("cosim.sync_rtt_ns").mean_ns() / 1e3);
  Status ts = session.write_trace_json("router_cosim.trace.json");
  Status ms = session.write_metrics_json("router_cosim.metrics.json");
  std::printf("wrote router_cosim.trace.json (%s), "
              "router_cosim.metrics.json (%s)\n",
              ts.ok() ? "ok" : ts.to_string().c_str(),
              ms.ok() ? "ok" : ms.to_string().c_str());
  std::printf("open the trace in chrome://tracing or ui.perfetto.dev\n");
  return tb.traffic_done() ? 0 : 1;
}
