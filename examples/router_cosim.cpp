// The paper's full case study (Section 6): a 4-port packet router modeled
// in the HDL kernel, verified against the checksum application running on
// the virtual board under the RTOS, over TCP loopback with virtual-tick
// synchronization.
//
// Usage: router_cosim [t_sync] [n_packets]
//          [--no-obs] [--metrics-json path] [--trace-json path]
//          [--record prefix] [--replay recording.hw.vhprec]
//
// Also reproduces the paper's Figure 2/4 timeline: the first OS state
// transitions of the board (normal <-> idle around each virtual tick) are
// recorded and printed. The run executes with full observability on and
// leaves two artifacts next to the binary's working directory:
//   router_cosim.trace.json    — Chrome trace_event timeline
//                                (open in chrome://tracing or Perfetto)
//   router_cosim.metrics.json  — all counters/gauges/histograms of the run
//
// --record <prefix> additionally captures every frame of the three-port link
// in the flight recorder and writes "<prefix>.{hw,board}.vhprec" after the
// run (inspect them with the vhptrace tool). --replay <hw-recording> runs
// the HW side *alone* — no board thread, no TCP — against the recorded
// traffic and reports either "replay ok" (identical virtual-time trajectory
// and router outputs) or the first divergent frame.
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "cli.hpp"
#include "vhp/cosim/session.hpp"
#include "vhp/net/replay.hpp"
#include "vhp/router/checksum_app.hpp"
#include "vhp/router/testbench.hpp"

using namespace vhp;

namespace {

constexpr u64 kMaxCycles = 2000000;
constexpr u64 kStepCycles = 500;

router::TestbenchConfig testbench_config(u64 n_packets) {
  router::TestbenchConfig tb_cfg;
  tb_cfg.router.remote_checksum = true;
  tb_cfg.router.buffer_depth = 4;
  tb_cfg.packets_per_port = n_packets / 4;
  tb_cfg.gap_cycles = 8000;  // feasible at the default T_sync (cf. Figure 7)
  tb_cfg.payload_bytes = 32;
  tb_cfg.corrupt_probability = 0.1;  // exercise the drop path too
  return tb_cfg;
}

u64 tag_u64(const obs::Recording& rec, const std::string& key, u64 fallback) {
  const auto it = rec.meta.tags.find(key);
  return it == rec.meta.tags.end()
             ? fallback
             : std::strtoull(it->second.c_str(), nullptr, 10);
}

// Replays an hw-side recording into a lone CosimKernel: the same testbench
// drives the same router model, but the board's half of the conversation is
// served from the file. Deterministic HW model + identical frame delivery
// (the replay gates on sequence and recorded virtual time) reproduce the
// original trajectory; any difference in what the HW sends is reported as
// the first divergent frame.
int run_replay(const std::string& path) {
  auto loaded = obs::read_recording(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load recording: %s\n",
                 loaded.status().to_string().c_str());
    return 2;
  }
  obs::Recording recording = std::move(loaded).value();
  if (recording.meta.side != "hw") {
    std::fprintf(stderr,
                 "--replay wants the hw-side recording (got side \"%s\"); "
                 "pass the .hw.vhprec file\n",
                 recording.meta.side.c_str());
    return 2;
  }
  const u64 n_packets = tag_u64(recording, "n_packets", 100);
  cosim::CosimConfig cc;
  cc.t_sync = tag_u64(recording, "t_sync", cc.t_sync);
  cc.data_poll_interval =
      tag_u64(recording, "data_poll_interval", cc.data_poll_interval);
  cc.timed = tag_u64(recording, "timed", 1) != 0;
  std::printf("replaying %s: T_sync=%llu, N=%llu packets, %zu frames\n\n",
              path.c_str(), (unsigned long long)cc.t_sync,
              (unsigned long long)n_packets, recording.frames.size());

  auto opened = net::ReplaySession::open(std::move(recording));
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().to_string().c_str());
    return 2;
  }
  std::unique_ptr<net::ReplaySession> replay = std::move(opened).value();
  cosim::CosimKernel kernel{replay->make_link(), cc};
  replay->set_time_source([&kernel] { return kernel.cycle(); });
  router::RouterTestbench tb{kernel.kernel(), testbench_config(n_packets),
                             &kernel.registry()};
  kernel.watch_interrupt(tb.router().irq(), board::Board::kDeviceVector);

  Status status;
  u64 cycles = 0;
  while (cycles < kMaxCycles && !tb.traffic_done()) {
    status = kernel.run_cycles(kStepCycles);
    if (!status.ok()) break;
    cycles += kStepCycles;
  }
  kernel.finish();

  const auto& rs = tb.router().stats();
  std::printf("cycles simulated        %10llu\n",
              (unsigned long long)kernel.cycle());
  std::printf("frames replayed         %10llu / %llu\n",
              (unsigned long long)replay->consumed(),
              (unsigned long long)replay->total());
  std::printf("forwarded               %10llu\n",
              (unsigned long long)rs.forwarded);
  std::printf("received by consumers   %10llu\n",
              (unsigned long long)tb.total_received());
  if (const auto divergence = replay->divergence()) {
    std::printf("DIVERGED: %s\n", divergence->to_string().c_str());
    return 1;
  }
  if (!status.ok()) {
    std::printf("replay stopped: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("replay ok: live HW side matched the recording\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  examples::ArgList args{argc, argv};
  if (const auto replay_path = args.take_value("--replay")) {
    return run_replay(*replay_path);
  }
  const bool obs_on = !args.take_flag("--no-obs");
  const std::string metrics_path =
      args.take_value("--metrics-json").value_or("router_cosim.metrics.json");
  const std::string trace_path =
      args.take_value("--trace-json").value_or("router_cosim.trace.json");
  const auto record_prefix = args.take_value("--record");
  const u64 t_sync = args.positional_u64(0, 1000);
  const u64 n_packets = args.positional_u64(1, 100);

  std::printf("router co-simulation: T_sync=%llu, N=%llu packets\n\n",
              (unsigned long long)t_sync, (unsigned long long)n_packets);

  const auto cfg = cosim::SessionConfigBuilder{}
                       .tcp()
                       .t_sync(t_sync)
                       .cycles_per_tick(10)
                       .observability(obs_on)
                       .record(record_prefix.has_value())
                       .postmortem_prefix("router_cosim.postmortem")
                       .build_or_throw();
  cosim::CosimSession session{cfg};
  cosim::CosimSession::install_postmortem_signal_handler();

  router::RouterTestbench tb{session.hw().kernel(),
                             testbench_config(n_packets),
                             &session.hw().registry()};
  session.hw().watch_interrupt(tb.router().irq(),
                               board::Board::kDeviceVector);

  router::ChecksumAppConfig app_cfg;
  app_cfg.cost_base = 20;
  app_cfg.cost_per_byte = 1;
  router::ChecksumApp app{session.board(), app_cfg};

  // Figure 2/4 timeline: record the first OS state switches. The trace
  // callback runs on the board thread; guard the vector.
  std::mutex timeline_mu;
  std::vector<std::pair<rtos::OsState, u64>> timeline;
  session.board().kernel().set_state_trace(
      [&](rtos::OsState state, SwTicks tick) {
        std::scoped_lock lock(timeline_mu);
        if (timeline.size() < 12) timeline.emplace_back(state, tick.value());
      });

  session.start_board();
  u64 cycles = 0;
  while (cycles < kMaxCycles && !tb.traffic_done()) {
    if (!session.run_cycles(kStepCycles).ok()) break;
    cycles += kStepCycles;
  }
  session.finish();

  if (record_prefix.has_value()) {
    Status rec = session.write_recordings(
        *record_prefix, {{"n_packets", std::to_string(n_packets)}});
    std::printf("recordings %s.{hw,board}.vhprec (%s)\n",
                record_prefix->c_str(),
                rec.ok() ? "ok" : rec.to_string().c_str());
  }

  const auto& rs = tb.router().stats();
  std::printf("--- HDL model (simulation kernel) ---------------------\n");
  std::printf("cycles simulated        %10llu\n",
              (unsigned long long)session.hw().cycle());
  std::printf("packets emitted         %10llu\n",
              (unsigned long long)tb.total_emitted());
  std::printf("accepted into buffers   %10llu\n",
              (unsigned long long)rs.accepted);
  std::printf("dropped (buffer full)   %10llu\n",
              (unsigned long long)rs.dropped_input_full);
  std::printf("dropped (bad checksum)  %10llu\n",
              (unsigned long long)rs.dropped_bad_checksum);
  std::printf("forwarded               %10llu\n",
              (unsigned long long)rs.forwarded);
  std::printf("received by consumers   %10llu\n",
              (unsigned long long)tb.total_received());
  std::printf("accuracy                %9.1f%%\n",
              100.0 * tb.forward_ratio());
  std::printf("--- board (RTOS) ---------------------------------------\n");
  const auto& bk = session.board().kernel();
  std::printf("SW ticks                %10llu\n",
              (unsigned long long)bk.tick_count().value());
  std::printf("checksums computed      %10llu (%llu rejected)\n",
              (unsigned long long)app.processed(),
              (unsigned long long)app.rejected());
  std::printf("context switches        %10llu\n",
              (unsigned long long)bk.stats().context_switches);
  std::printf("freezes / grants        %10llu / %llu\n",
              (unsigned long long)bk.stats().freezes,
              (unsigned long long)bk.stats().grants);
  std::printf("--- OS state timeline (paper Figure 2/4, first switches) -\n");
  {
    std::scoped_lock lock(timeline_mu);
    for (const auto& [state, tick] : timeline) {
      std::printf("  tick %6llu  -> %s\n", (unsigned long long)tick,
                  state == rtos::OsState::kIdle
                      ? "IDLE   (frozen, TIME_ACK sent; comm threads only)"
                      : "NORMAL (CLOCK_TICK received, budget granted)");
    }
  }
  std::printf("--- link ------------------------------------------------\n");
  std::printf("sync round trips        %10llu\n",
              (unsigned long long)session.hw().stats().syncs);
  std::printf("interrupts sent         %10llu\n",
              (unsigned long long)session.hw().stats().interrupts_sent);
  std::printf("driver writes / reads   %10llu / %llu\n",
              (unsigned long long)session.hw().stats().data_writes,
              (unsigned long long)session.hw().stats().data_reads);
  std::printf("--- observability ---------------------------------------\n");
  auto& hub = session.obs();
  std::printf("trace events            %10zu (%llu dropped)\n",
              hub.tracer().event_count(),
              (unsigned long long)hub.tracer().dropped());
  std::printf("sync RTT mean           %12.1f us\n",
              hub.metrics().histogram("cosim.sync_rtt_ns").mean_ns() / 1e3);
  Status ts = session.write_trace_json(trace_path);
  Status ms = session.write_metrics_json(metrics_path);
  std::printf("wrote %s (%s), %s (%s)\n", trace_path.c_str(),
              ts.ok() ? "ok" : ts.to_string().c_str(), metrics_path.c_str(),
              ms.ok() ? "ok" : ms.to_string().c_str());
  std::printf("open the trace in chrome://tracing or ui.perfetto.dev\n");
  return tb.traffic_done() ? 0 : 1;
}
