// DMA-offload scenario: prototyping a DMA engine for the board's FPGA.
//
// The device under design is a DMA engine with its own on-chip memory,
// modeled in the HDL kernel. The board's software programs it through the
// driver exactly as it would program the final silicon:
//
//   1. stage source data into device memory through the write window,
//   2. program SRC/DST/LEN and kick CTRL,
//   3. sleep until the completion interrupt,
//   4. read the destination back through the read window and verify.
//
// The copy itself advances in simulated time (a configurable number of
// bytes per clock cycle), so the software measures a realistic completion
// latency in board ticks — the kind of early performance number the paper's
// methodology exists to provide.
// Usage: dma_offload [--obs] [--metrics-json path]
#include <atomic>
#include <cstdio>

#include "cli.hpp"
#include "vhp/common/rng.hpp"
#include "vhp/cosim/session.hpp"
#include "vhp/rtos/sync.hpp"
#include "vhp/sim/memory.hpp"
#include "vhp/sim/module.hpp"

using namespace vhp;

namespace {

/// Register map of the DMA engine (device addresses).
constexpr u32 kRegSrc = 0x00;
constexpr u32 kRegDst = 0x04;
constexpr u32 kRegLen = 0x08;
constexpr u32 kRegCtrl = 0x0c;
constexpr u32 kRegStatus = 0x10;
constexpr u32 kWinWrite = 0x40;  // payload: [u32 mem_addr][bytes...]
constexpr u32 kWinReadCfg = 0x44;  // payload: [u32 mem_addr][u32 len]
constexpr u32 kWinRead = 0x50;   // read returns the configured window

constexpr u32 kStatusIdle = 0;
constexpr u32 kStatusBusy = 1;
constexpr u32 kStatusDone = 2;

struct DmaEngine : sim::Module {
  sim::Memory mem{"dma.mem"};
  cosim::DriverIn<u32> src;
  cosim::DriverIn<u32> dst;
  cosim::DriverIn<u32> len;
  cosim::DriverIn<u32> ctrl;
  cosim::DriverOut<u32> status;
  sim::BoolSignal& irq;
  sim::Event start_event;
  u64 bytes_per_cycle;

  DmaEngine(cosim::CosimKernel& hw, u64 rate)
      : Module(hw.kernel(), "dma"),
        src(hw.kernel(), hw.registry(), "dma.src", kRegSrc),
        dst(hw.kernel(), hw.registry(), "dma.dst", kRegDst),
        len(hw.kernel(), hw.registry(), "dma.len", kRegLen),
        ctrl(hw.kernel(), hw.registry(), "dma.ctrl", kRegCtrl),
        status(hw.registry(), "dma.status", kRegStatus),
        irq(make_bool_signal("irq")),
        start_event(hw.kernel(), "dma.start"),
        bytes_per_cycle(rate) {
    status.write(kStatusIdle);

    // Memory windows: raw registry handlers (the same hooks DriverIn/Out
    // are built on), because their payloads embed addresses.
    hw.registry().register_write(kWinWrite, [this](std::span<const u8> p) {
      ByteReader r{p};
      const u32 addr = r.u32v();
      if (!r.ok()) {
        return Status{StatusCode::kInvalidArgument, "short window write"};
      }
      mem.write(addr, p.subspan(4));
      return Status::Ok();
    });
    hw.registry().register_write(kWinReadCfg, [this](std::span<const u8> p) {
      ByteReader r{p};
      window_addr_ = r.u32v();
      window_len_ = r.u32v();
      return r.ok() ? Status::Ok()
                    : Status{StatusCode::kInvalidArgument,
                             "short window config"};
    });
    hw.registry().register_read(
        kWinRead, [this] { return mem.read(window_addr_, window_len_); });

    // The paper's driver process: kicked by a CTRL write.
    method("kick",
           [this] {
             if (ctrl.read() == 1 && status.read() != kStatusBusy) {
               start_event.notify();
             }
           })
        .sensitive(ctrl.data_written_event())
        .dont_initialize();

    const sim::SimTime period = hw.config().clock_period;
    thread("engine", [this, period] {
      for (;;) {
        sim::wait(start_event);
        status.write(kStatusBusy);
        const u32 n = len.read();
        // Copy at bytes_per_cycle, burning simulated time as real DMA would.
        for (u32 done = 0; done < n;
             done += static_cast<u32>(bytes_per_cycle)) {
          const u32 chunk =
              std::min<u32>(static_cast<u32>(bytes_per_cycle), n - done);
          Bytes buf = mem.read(src.read() + done, chunk);
          mem.write(dst.read() + done, buf);
          sim::wait(period);
        }
        status.write(kStatusDone);
        irq.write(true);
        sim::wait(2 * period);
        irq.write(false);
      }
    });
    hw.watch_interrupt(irq, board::Board::kDeviceVector);
  }

 private:
  u32 window_addr_ = 0;
  u32 window_len_ = 0;
};

Bytes encode_window_write(u32 addr, std::span<const u8> data) {
  Bytes out;
  ByteWriter w{out};
  w.u32v(addr);
  w.bytes(data);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  examples::ArgList args{argc, argv};
  const bool obs_on = args.take_flag("--obs");
  const auto metrics_path = args.take_value("--metrics-json");

  const auto cfg = cosim::SessionConfigBuilder{}
                       .tcp()
                       .t_sync(200)
                       .cycles_per_tick(10)
                       .observability(obs_on || metrics_path.has_value())
                       .build_or_throw();
  cosim::CosimSession session{cfg};

  DmaEngine dma{session.hw(), /*bytes per cycle=*/1};

  auto& board = session.board();
  rtos::Semaphore dma_done{board.kernel(), 0};
  board.attach_device_dsr([&](u32) { dma_done.post(); });

  constexpr u32 kLen = 1024;
  constexpr u32 kSrcAddr = 0x1000;
  constexpr u32 kDstAddr = 0x8000;
  std::atomic<bool> verified{false};
  std::atomic<bool> finished{false};

  board.spawn_app("dma_app", 8, [&] {
    Rng rng{7};
    Bytes pattern(kLen);
    for (auto& b : pattern) b = static_cast<u8>(rng.below(256));

    // 1. Stage the source buffer (chunked, as a driver would).
    for (u32 off = 0; off < kLen; off += 256) {
      auto chunk = std::span{pattern}.subspan(off, 256);
      (void)board.dev_write(kWinWrite,
                            encode_window_write(kSrcAddr + off, chunk));
      board.kernel().consume(50);  // driver copy cost
    }

    // 2. Program and start the engine.
    const u64 t0 = board.kernel().tick_count().value();
    (void)board.dev_write(kRegSrc, cosim::DriverCodec<u32>::encode(kSrcAddr));
    (void)board.dev_write(kRegDst, cosim::DriverCodec<u32>::encode(kDstAddr));
    (void)board.dev_write(kRegLen, cosim::DriverCodec<u32>::encode(kLen));
    (void)board.dev_write(kRegCtrl, cosim::DriverCodec<u32>::encode(1));

    // 3. Sleep until completion.
    dma_done.wait();
    const u64 t1 = board.kernel().tick_count().value();

    // 4. Read back and verify.
    Bytes cfg_payload;
    ByteWriter w{cfg_payload};
    w.u32v(kDstAddr);
    w.u32v(kLen);
    (void)board.dev_write(kWinReadCfg, cfg_payload);
    auto back = board.dev_read(kWinRead, kLen);
    if (back.ok() && back.value() == pattern) verified = true;

    auto status = board.dev_read(kRegStatus, 4);
    u32 st = 0;
    if (status.ok()) {
      (void)cosim::DriverCodec<u32>::decode(status.value(), st);
    }
    std::printf("DMA copied %u bytes in %llu board ticks "
                "(status=%u, verified=%s)\n",
                kLen, (unsigned long long)(t1 - t0), st,
                verified ? "yes" : "NO");
    finished = true;
  });

  session.start_board();
  for (int chunk = 0; chunk < 4000 && !finished; ++chunk) {
    if (!session.run_cycles(100).ok()) break;
  }
  session.finish();

  std::printf("simulated %llu cycles, %llu syncs, memory pages resident: "
              "%zu\n",
              (unsigned long long)session.hw().cycle(),
              (unsigned long long)session.hw().stats().syncs,
              dma.mem.resident_pages());
  if (metrics_path.has_value()) {
    Status ms = session.write_metrics_json(*metrics_path);
    std::printf("wrote %s (%s)\n", metrics_path->c_str(),
                ms.ok() ? "ok" : ms.to_string().c_str());
  }
  return verified ? 0 : 1;
}
