// The case study scaled out on the co-simulation fabric: the same 4-port
// packet router, but checksum verification is sharded across FOUR virtual
// boards — one per router input port — orchestrated by the N-party
// virtual-tick barrier (vhp::fabric).
//
// Usage: router_fabric [t_sync] [n_packets]
//          [--inproc] [--no-baseline]
//          [--metrics-json path] [--record prefix]
//
// Each node runs its own RTOS instance (own fiber group, own host thread),
// its own ChecksumApp, and its own DriverRegistry — all four boards use the
// SAME device addresses (0x0/0x4) without colliding, because DATA traffic
// of node i consults only registry i.
//
// After the fabric run the program replays the identical traffic through
// the classic two-party CosimSession (one board verifying all four ports)
// and compares the packet accounting: the fabric must deliver exactly the
// packet counts of the single-session baseline — the barrier changes who
// verifies, not what happens.
//
// Artifacts: router_fabric.metrics.json — ONE merged document spanning the
// master hub (fabric.* barrier metrics, unprefixed) and the four node hubs
// ("port0."... prefixes, obs::merged_metrics_json). --record writes the
// node-stamped master recording "<prefix>.hw.vhprec" (diff/replay per node
// with vhptrace --node / net::ReplayOptions::node) plus one board-side
// recording per node.
#include <cstdio>
#include <string>
#include <vector>

#include "cli.hpp"
#include "vhp/cosim/session.hpp"
#include "vhp/fabric/fabric.hpp"
#include "vhp/router/checksum_app.hpp"
#include "vhp/router/testbench.hpp"

using namespace vhp;

namespace {

constexpr u64 kMaxCycles = 2000000;
constexpr u64 kStepCycles = 500;
constexpr std::size_t kPorts = 4;

router::TestbenchConfig testbench_config(u64 n_packets) {
  // Identical to router_cosim's, so the baseline comparison is exact.
  router::TestbenchConfig tb_cfg;
  tb_cfg.router.remote_checksum = true;
  tb_cfg.router.buffer_depth = 4;
  tb_cfg.packets_per_port = n_packets / kPorts;
  tb_cfg.gap_cycles = 8000;
  tb_cfg.payload_bytes = 32;
  tb_cfg.corrupt_probability = 0.1;
  return tb_cfg;
}

router::ChecksumAppConfig app_config() {
  router::ChecksumAppConfig app_cfg;
  app_cfg.cost_base = 20;
  app_cfg.cost_per_byte = 1;
  return app_cfg;
}

struct Counts {
  u64 emitted = 0;
  u64 forwarded = 0;
  u64 received = 0;
  u64 dropped_bad_checksum = 0;
};

/// The two-party reference: one board verifies all four ports (the exact
/// router_cosim configuration, minus the console theater).
Counts run_baseline(u64 t_sync, u64 n_packets, bool inproc) {
  auto builder = cosim::SessionConfigBuilder{}.t_sync(t_sync)
                     .cycles_per_tick(10);
  if (!inproc) builder.tcp();
  cosim::CosimSession session{builder.build_or_throw()};
  router::RouterTestbench tb{session.hw().kernel(),
                             testbench_config(n_packets),
                             &session.hw().registry()};
  session.hw().watch_interrupt(tb.router().irq(),
                               board::Board::kDeviceVector);
  router::ChecksumApp app{session.board(), app_config()};
  session.start_board();
  u64 cycles = 0;
  while (cycles < kMaxCycles && !tb.traffic_done()) {
    if (!session.run_cycles(kStepCycles).ok()) break;
    cycles += kStepCycles;
  }
  session.finish();
  return Counts{tb.total_emitted(), tb.router().stats().forwarded,
                tb.total_received(), tb.router().stats().dropped_bad_checksum};
}

}  // namespace

int main(int argc, char** argv) {
  examples::ArgList args{argc, argv};
  const bool inproc = args.take_flag("--inproc");
  const bool baseline = !args.take_flag("--no-baseline");
  const std::string metrics_path =
      args.take_value("--metrics-json").value_or("router_fabric.metrics.json");
  const auto record_prefix = args.take_value("--record");
  const u64 t_sync = args.positional_u64(0, 1000);
  const u64 n_packets = args.positional_u64(1, 100);

  std::printf("router fabric: %zu boards (one per port), T_sync=%llu, "
              "N=%llu packets, %s links\n\n",
              kPorts, (unsigned long long)t_sync,
              (unsigned long long)n_packets, inproc ? "inproc" : "TCP");

  fabric::FabricConfigBuilder builder;
  builder.t_sync(t_sync).watchdog(std::chrono::milliseconds{30000});
  if (!inproc) builder.tcp();
  if (record_prefix.has_value()) builder.record();
  for (std::size_t p = 0; p < kPorts; ++p) {
    builder.add_node("port" + std::to_string(p));
    builder.last_board().rtos.cycles_per_tick = 10;
  }
  fabric::Fabric fab{builder.build_or_throw()};

  // The router verifies the packet of input port p on board p: hand the
  // testbench all four per-node registries and wire each verifier's
  // interrupt line to its node.
  std::vector<cosim::DriverRegistry*> registries;
  for (std::size_t p = 0; p < kPorts; ++p) {
    registries.push_back(&fab.registry(p));
  }
  router::RouterTestbench tb{fab.kernel(), testbench_config(n_packets),
                             registries};
  for (std::size_t p = 0; p < kPorts; ++p) {
    fab.watch_interrupt(p, tb.router().irq(p), board::Board::kDeviceVector);
  }
  std::vector<std::unique_ptr<router::ChecksumApp>> apps;
  for (std::size_t p = 0; p < kPorts; ++p) {
    apps.push_back(std::make_unique<router::ChecksumApp>(fab.board(p),
                                                         app_config()));
  }

  fab.start_boards();
  Status status;
  u64 cycles = 0;
  while (cycles < kMaxCycles && !tb.traffic_done()) {
    status = fab.run_cycles(kStepCycles);
    if (!status.ok()) break;
    cycles += kStepCycles;
  }
  fab.finish();
  if (!status.ok()) {
    std::fprintf(stderr, "fabric stopped: %s\n", status.to_string().c_str());
    return 2;
  }

  const auto& rs = tb.router().stats();
  const Counts fabric_counts{tb.total_emitted(), rs.forwarded,
                             tb.total_received(), rs.dropped_bad_checksum};
  std::printf("--- HDL model (master kernel) ---------------------------\n");
  std::printf("cycles simulated        %10llu\n",
              (unsigned long long)fab.cycle());
  std::printf("packets emitted         %10llu\n",
              (unsigned long long)fabric_counts.emitted);
  std::printf("forwarded               %10llu\n",
              (unsigned long long)fabric_counts.forwarded);
  std::printf("dropped (bad checksum)  %10llu\n",
              (unsigned long long)fabric_counts.dropped_bad_checksum);
  std::printf("received by consumers   %10llu\n",
              (unsigned long long)fabric_counts.received);
  std::printf("--- fabric barrier --------------------------------------\n");
  std::printf("barriers                %10llu\n",
              (unsigned long long)fab.coordinator().barriers());
  std::printf("clock ticks scattered   %10llu\n",
              (unsigned long long)fab.coordinator().ticks_sent());
  std::printf("time acks gathered      %10llu\n",
              (unsigned long long)fab.coordinator().acks_received());
  std::printf("--- boards ----------------------------------------------\n");
  for (std::size_t p = 0; p < kPorts; ++p) {
    const auto& bk = fab.board(p).kernel();
    std::printf("  port%zu: %6llu SW ticks, %4llu checksums (%llu rejected), "
                "%llu ctx switches\n",
                p, (unsigned long long)bk.tick_count().value(),
                (unsigned long long)apps[p]->processed(),
                (unsigned long long)apps[p]->rejected(),
                (unsigned long long)bk.stats().context_switches);
  }

  if (record_prefix.has_value()) {
    Status rec = fab.write_recordings(
        *record_prefix, {{"n_packets", std::to_string(n_packets)}});
    std::printf("recordings %s.hw.vhprec + per-node board files (%s)\n",
                record_prefix->c_str(),
                rec.ok() ? "ok" : rec.to_string().c_str());
  }
  Status ms = fab.write_metrics_json(metrics_path);
  std::printf("wrote %s (%s) — merged across master + %zu node hubs\n",
              metrics_path.c_str(), ms.ok() ? "ok" : ms.to_string().c_str(),
              kPorts);

  if (!baseline) return tb.traffic_done() ? 0 : 1;

  std::printf("\nrunning single-session baseline for comparison...\n");
  const Counts base = run_baseline(t_sync, n_packets, inproc);
  const bool match = base.emitted == fabric_counts.emitted &&
                     base.forwarded == fabric_counts.forwarded &&
                     base.received == fabric_counts.received &&
                     base.dropped_bad_checksum ==
                         fabric_counts.dropped_bad_checksum;
  std::printf("--- fabric vs single-session baseline -------------------\n");
  std::printf("                         fabric    baseline\n");
  std::printf("emitted              %10llu  %10llu\n",
              (unsigned long long)fabric_counts.emitted,
              (unsigned long long)base.emitted);
  std::printf("forwarded            %10llu  %10llu\n",
              (unsigned long long)fabric_counts.forwarded,
              (unsigned long long)base.forwarded);
  std::printf("received             %10llu  %10llu\n",
              (unsigned long long)fabric_counts.received,
              (unsigned long long)base.received);
  std::printf("dropped bad checksum %10llu  %10llu\n",
              (unsigned long long)fabric_counts.dropped_bad_checksum,
              (unsigned long long)base.dropped_bad_checksum);
  std::printf("%s\n", match ? "MATCH: the fabric delivers the baseline's "
                              "packet counts"
                            : "MISMATCH between fabric and baseline");
  return match && tb.traffic_done() ? 0 : 1;
}
