// Many-core virtual board (DESIGN.md §13): four ISS cores running the same
// SPMD firmware behind per-core L1 caches and a banked shared memory, in a
// timed co-simulation. Each core discovers its id (syscall 4), sweeps a
// shared region one cache line at a time — all four cores walk the banks
// in lockstep, so the bank-conflict counters light up — then stamps a
// marker word and exits. The host side reads the cache-miss and stall
// counters per core afterwards: the README's 4-core quickstart.
//
// The firmware (assembled below, no toolchain needed):
//
//     id = core_id();                 // ecall 4
//     p  = WORK + 4 * id;
//     for (i = 0; i < 256; ++i) {
//       *p += 1;                      // lw/sw: D-miss + bank traffic
//       p  += 32;                     // next line, next bank
//     }
//     MARK[id] = 0xC0DE0000 | id;
//     exit(id);                       // ecall 0
#include <cstdio>

#include "vhp/cosim/session.hpp"
#include "vhp/iss/assemble.hpp"
#include "vhp/iss/multicore.hpp"

using namespace vhp;

namespace {

constexpr u32 kWork = 0x0002'0000;
constexpr u32 kMark = 0x5000;
constexpr u32 kCores = 4;
constexpr u32 kRounds = 256;

iss::Asm spmd_program(u32 step) {
  iss::Asm a;
  a.addi(17, 0, 4);  // a7 = core-id syscall
  a.ecall();
  a.slli(5, 10, 2);  // x5 = id * 4
  a.li(8, kWork);
  a.add(8, 8, 5);
  a.li(6, kRounds);
  a.li(9, step);
  const auto loop = a.make_label();
  a.bind(loop);
  a.lw(7, 8, 0);
  a.addi(7, 7, 1);
  a.sw(7, 8, 0);
  a.add(8, 8, 9);
  a.addi(6, 6, -1);
  a.bne(6, 0, loop);
  a.li(6, 0xC0DE0000u);  // marker = 0xC0DE0000 | id
  a.or_(6, 6, 10);
  a.li(8, kMark);
  a.add(8, 8, 5);
  a.sw(6, 8, 0);
  a.addi(17, 0, 0);  // exit(id)
  a.ecall();
  return a;
}

}  // namespace

int main() {
  mem::MemConfig mem_cfg;  // defaults: 4 banks, 32-byte lines, 2-way L1
  auto cfg = cosim::SessionConfigBuilder{}
                 .inproc()
                 .t_sync(200)
                 .cycles_per_tick(10)
                 .cores(kCores)
                 .memory(mem_cfg)
                 .build_or_throw();
  cosim::CosimSession session{cfg};

  sim::Memory ram{"ram"};
  spmd_program(mem_cfg.dcache.line_bytes).load_into(ram, 0x1000);
  iss::MultiCoreBoardConfig board_cfg;
  board_cfg.entry_pcs.assign(kCores, 0x1000);
  iss::MultiCoreBoard cores{session.board(), ram, board_cfg};

  session.start_board();
  u64 cycles = 0;
  while (cycles < 400'000 && !cores.all_exited()) {
    if (!session.run_cycles(500).ok()) break;
    cycles += 500;
  }
  session.finish();

  std::printf("%5s %8s %12s %8s %8s %13s %12s\n", "core", "marker",
              "instructions", "I-miss", "D-miss", "fetch-stalls",
              "data-stalls");
  for (u32 c = 0; c < kCores; ++c) {
    auto& port = cores.memory().port(c);
    const auto& p = port.pipeline().stats();
    std::printf("%5u %8x %12llu %8llu %8llu %13llu %12llu\n", c,
                ram.read_u32(kMark + 4 * c),
                static_cast<unsigned long long>(p.instructions),
                static_cast<unsigned long long>(port.icache().misses()),
                static_cast<unsigned long long>(port.dcache().misses()),
                static_cast<unsigned long long>(p.fetch_stall_cycles),
                static_cast<unsigned long long>(p.data_stall_cycles));
  }
  const auto& banked = cores.memory().memory();
  std::printf("\nshared memory: %llu requests, %llu bank conflicts "
              "(%llu wait cycles) over %llu board cycles\n",
              static_cast<unsigned long long>(banked.requests()),
              static_cast<unsigned long long>(banked.conflicts()),
              static_cast<unsigned long long>(banked.conflict_wait_cycles()),
              static_cast<unsigned long long>(cycles));
  return cores.all_exited() ? 0 : 1;
}
